"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.clustering import cluster_scores, kmeans_1d
from repro.core.metrics import goodman_kruskal_gamma, precision_at_k, top_k_overlap
from repro.core.pruning import ProgressiveClusterPruner, coefficient_of_variation
from repro.device.clock import VirtualClock
from repro.device.memory import MemoryTracker
from repro.device.ssd import SSDDevice, SSDModel
from repro.model.semantics import _unit_normals
from repro.text.vocab import Vocabulary

scores_arrays = arrays(
    np.float64,
    st.integers(min_value=2, max_value=40),
    elements=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)


class TestClusteringProperties:
    @given(scores=scores_arrays, k=st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_kmeans_labels_partition(self, scores, k):
        clustering = kmeans_1d(scores, k)
        assert clustering.labels.shape == scores.shape
        assert clustering.labels.min() >= 0
        assert clustering.labels.max() < clustering.num_clusters
        assert (clustering.sizes() > 0).all()

    @given(scores=scores_arrays, k=st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_kmeans_centers_strictly_descending(self, scores, k):
        clustering = kmeans_1d(scores, k)
        if clustering.num_clusters > 1:
            assert (np.diff(clustering.centers) < 0).all()

    @given(scores=scores_arrays)
    @settings(max_examples=60, deadline=None)
    def test_cluster_assignment_respects_order(self, scores):
        """A higher score never lands in a lower-ranked (higher-id)
        cluster than a lower score."""
        clustering = cluster_scores(scores)
        order = np.argsort(-scores)
        labels_by_rank = clustering.labels[order]
        assert (np.diff(labels_by_rank) >= 0).all()

    @given(scores=scores_arrays)
    @settings(max_examples=40, deadline=None)
    def test_inertia_nonnegative(self, scores):
        assert cluster_scores(scores).inertia >= 0.0


class TestPrunerProperties:
    @given(
        scores=scores_arrays,
        slots=st.integers(min_value=1, max_value=10),
        threshold=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_routing_is_a_partition(self, scores, slots, threshold):
        assume(slots <= scores.size)
        pruner = ProgressiveClusterPruner(dispersion_threshold=threshold)
        decision = pruner.decide(scores, slots)
        if decision.triggered:
            routed = np.concatenate(
                [decision.selected, decision.deferred, decision.dropped]
            )
            assert sorted(routed.tolist()) == list(range(scores.size))

    @given(scores=scores_arrays, slots=st.integers(min_value=1, max_value=10))
    @settings(max_examples=80, deadline=None)
    def test_selected_scores_dominate_dropped(self, scores, slots):
        """No dropped candidate may outscore a selected one."""
        assume(slots <= scores.size)
        pruner = ProgressiveClusterPruner(dispersion_threshold=0.0)
        decision = pruner.decide(scores, slots)
        if decision.selected.size and decision.dropped.size:
            assert scores[decision.selected].min() >= scores[decision.dropped].max()

    @given(scores=scores_arrays, slots=st.integers(min_value=1, max_value=10))
    @settings(max_examples=80, deadline=None)
    def test_never_selects_more_than_slots(self, scores, slots):
        assume(slots <= scores.size)
        pruner = ProgressiveClusterPruner(dispersion_threshold=0.0)
        decision = pruner.decide(scores, slots)
        assert decision.selected.size <= slots

    @given(scores=scores_arrays)
    @settings(max_examples=40, deadline=None)
    def test_cv_nonnegative(self, scores):
        assert coefficient_of_variation(scores) >= 0.0


class TestMetricProperties:
    @given(
        labels=arrays(np.bool_, st.integers(min_value=1, max_value=30)),
        k=st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=80, deadline=None)
    def test_precision_bounded(self, labels, k):
        selected = np.arange(min(k, labels.size))
        assert 0.0 <= precision_at_k(selected, labels, k) <= 1.0

    @given(
        a=arrays(np.float64, 8, elements=st.floats(0, 1, allow_nan=False)),
        b=arrays(np.float64, 8, elements=st.floats(0, 1, allow_nan=False)),
    )
    @settings(max_examples=80, deadline=None)
    def test_gamma_bounded_and_symmetric(self, a, b):
        gamma = goodman_kruskal_gamma(a, b)
        assert -1.0 <= gamma <= 1.0
        assert gamma == pytest.approx(goodman_kruskal_gamma(b, a))

    @given(a=arrays(np.float64, 8, elements=st.floats(0, 1, allow_nan=False)))
    @settings(max_examples=40, deadline=None)
    def test_gamma_self_agreement(self, a):
        assert goodman_kruskal_gamma(a, a) == 1.0

    @given(
        xs=st.lists(st.integers(0, 100), min_size=1, max_size=10, unique=True),
        k=st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=60, deadline=None)
    def test_overlap_reflexive(self, xs, k):
        arr = np.array(xs)
        assert top_k_overlap(arr, arr, k) == 1.0


class TestMemoryTrackerProperties:
    @given(
        sizes=st.lists(st.integers(min_value=0, max_value=10**9), min_size=1, max_size=20)
    )
    @settings(max_examples=60, deadline=None)
    def test_alloc_free_conservation(self, sizes):
        tracker = MemoryTracker(VirtualClock())
        for i, size in enumerate(sizes):
            tracker.alloc(f"a{i}", size)
        assert tracker.in_use == sum(sizes)
        assert tracker.peak == sum(sizes)
        for i in range(len(sizes)):
            tracker.free(f"a{i}")
        assert tracker.in_use == 0
        assert tracker.peak == sum(sizes)

    @given(
        ops=st.lists(
            st.tuples(st.booleans(), st.integers(min_value=0, max_value=10**6)),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_peak_is_max_of_in_use(self, ops):
        """Replaying any alloc/free sequence, peak == max(in_use)."""
        tracker = MemoryTracker(VirtualClock())
        live: list[str] = []
        observed_max = 0
        for i, (is_alloc, size) in enumerate(ops):
            if is_alloc or not live:
                name = f"b{i}"
                tracker.alloc(name, size)
                live.append(name)
            else:
                tracker.free(live.pop())
            observed_max = max(observed_max, tracker.in_use)
        assert tracker.peak == observed_max


class TestSSDProperties:
    @given(
        sizes=st.lists(
            st.integers(min_value=1, max_value=10**8), min_size=1, max_size=12
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_async_requests_serialize_without_gaps(self, sizes):
        """Back-to-back async reads leave no idle gaps on the stream."""
        clock = VirtualClock()
        ssd = SSDDevice(clock, SSDModel(read_bandwidth=1e9, write_bandwidth=1e9, latency=1e-4))
        requests = [ssd.read_async(f"r{i}", size) for i, size in enumerate(sizes)]
        for prev, nxt in zip(requests, requests[1:]):
            assert nxt.start_time == pytest.approx(prev.complete_time)
        total = sum(ssd.model.read_time(size) for size in sizes)
        assert requests[-1].complete_time == pytest.approx(total)

    @given(nbytes=st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=40, deadline=None)
    def test_read_time_monotone(self, nbytes):
        model = SSDModel(read_bandwidth=3e9, write_bandwidth=2e9)
        assert model.read_time(nbytes + 1024) > model.read_time(nbytes) - 1e-12


class TestVocabularyProperties:
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_samples_always_regular_tokens(self, seed):
        vocab = Vocabulary(5000)
        ids = vocab.sample(np.random.default_rng(seed), 200)
        assert (ids >= vocab.num_special).all()
        assert (ids < vocab.size).all()


class TestSemanticsProperties:
    @given(
        uids=st.lists(st.integers(min_value=0, max_value=2**31 - 1), min_size=1, max_size=20, unique=True),
        layer=st.integers(min_value=0, max_value=60),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=60, deadline=None)
    def test_unit_normals_batch_invariant(self, uids, layer, seed):
        """Each candidate's draw is independent of its batch context."""
        arr = np.array(uids, dtype=np.uint64)
        batched = _unit_normals(seed, arr, layer)
        solo = np.array([_unit_normals(seed, np.array([u], dtype=np.uint64), layer)[0] for u in uids])
        assert np.array_equal(batched, solo)
