"""Tests for the trace-driven open-loop traffic generator (DESIGN.md §13)."""

import math

import pytest

from repro.data.traffic import (
    ARRIVAL_PROCESSES,
    TRAFFIC_SLO_CLASSES,
    TrafficConfig,
    generate_traffic,
    is_traffic_file,
    parse_traffic,
    read_traffic_trace,
    render_traffic,
    summarize_traffic,
    write_traffic_trace,
)

SMALL = dict(num_tenants=20, duration_s=4.0, rate_rps=40.0, seed=3)


class TestConfigValidation:
    def test_defaults_valid(self):
        TrafficConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(num_tenants=0),
            dict(duration_s=0.0),
            dict(rate_rps=0.0),
            dict(process="lognormal"),
            dict(class_mix=(("interactive", 0.5), ("batch", 0.4))),  # != 1
            dict(class_mix=(("interactive", 0.5), ("interactive", 0.5))),
            dict(class_mix=(("platinum", 1.0),)),
            dict(admit_factor=(("interactive", 1.0),)),  # missing classes
            dict(burst=0.5),
            dict(burst_sigma=(("interactive", -1.0),)),
            dict(burst_sigma=(("platinum", 1.0),)),
            dict(tenant_weights=()),
            dict(tenant_weights=(1.0, -2.0)),
            dict(min_candidates=1),
            dict(max_candidates=2, min_candidates=4),
            dict(k=9, min_candidates=4),
            dict(burst_multiplier=1.0),
            dict(burst_fraction=1.0),
            dict(diurnal_depth=1.0),
        ],
    )
    def test_rejects(self, kwargs):
        with pytest.raises(ValueError):
            TrafficConfig(**kwargs)


class TestGeneration:
    def test_deterministic_byte_identical(self):
        config = TrafficConfig(**SMALL)
        assert render_traffic(generate_traffic(config)) == render_traffic(
            generate_traffic(config)
        )

    def test_seed_changes_trace(self):
        a = generate_traffic(TrafficConfig(**dict(SMALL, seed=1)))
        b = generate_traffic(TrafficConfig(**dict(SMALL, seed=2)))
        assert render_traffic(a) != render_traffic(b)

    @pytest.mark.parametrize("process", ARRIVAL_PROCESSES)
    def test_arrivals_sorted_within_duration(self, process):
        config = TrafficConfig(**dict(SMALL, process=process))
        trace = generate_traffic(config)
        arrivals = [r.arrival for r in trace.requests]
        assert arrivals == sorted(arrivals)
        assert all(0.0 <= a < config.duration_s for a in arrivals)
        # Open-loop: the realised mean rate tracks the offered rate.
        assert len(arrivals) == pytest.approx(
            config.rate_rps * config.duration_s, rel=0.5
        )

    def test_candidate_sizes_within_bounds(self):
        config = TrafficConfig(**SMALL, min_candidates=4, max_candidates=12)
        trace = generate_traffic(config)
        sizes = {r.query.num_candidates for r in trace.requests}
        assert sizes  # non-empty trace
        assert all(config.min_candidates <= s <= config.max_candidates for s in sizes)
        assert len(sizes) > 1  # heavy tail actually varies the sizes

    def test_every_tenant_profiled_and_tagged(self):
        trace = generate_traffic(TrafficConfig(**SMALL))
        assert len(trace.tenants) == trace.config.num_tenants
        for request in trace.requests:
            profile = trace.tenants[request.tenant]
            assert request.slo == profile.slo
            assert request.query.tenant == request.tenant
        assert {p.slo for p in trace.tenants.values()} <= set(TRAFFIC_SLO_CLASSES)

    def test_burst_sigma_deepens_interactive_buckets(self):
        # The head tenant expects the most arrivals; with a non-zero
        # sigma its bucket must sit above the flat floor, and zeroing
        # the sigmas collapses every bucket back to the floor.
        config = TrafficConfig(
            **SMALL,
            class_mix=(("interactive", 1.0), ("batch", 0.0), ("best_effort", 0.0)),
        )
        trace = generate_traffic(config)
        bursts = [p.burst for p in trace.tenants.values()]
        assert max(bursts) > config.burst
        sigma = dict(config.burst_sigma)["interactive"]
        expected_head = (
            trace.config.rate_rps
            * trace.config.duration_s
            * (1.0 / sum(r ** -config.tenant_zipf_s for r in range(1, 21)))
        )
        assert max(bursts) == pytest.approx(
            max(config.burst, sigma * math.sqrt(expected_head))
        )
        flat = generate_traffic(
            TrafficConfig(
                **SMALL,
                class_mix=config.class_mix,
                burst_sigma=(("interactive", 0.0),),
            )
        )
        assert all(p.burst == config.burst for p in flat.tenants.values())


class TestArtifact:
    def test_round_trip(self, tmp_path):
        trace = generate_traffic(TrafficConfig(**SMALL, process="mmpp"))
        path = tmp_path / "trace.jsonl"
        text = write_traffic_trace(trace, path)
        back = read_traffic_trace(path)
        assert back.config == trace.config
        assert back.tenants == trace.tenants
        assert back.requests == trace.requests
        # Canonical form survives a parse → render cycle byte-for-byte.
        assert render_traffic(back) == text

    def test_is_traffic_file(self, tmp_path):
        good = tmp_path / "trace.jsonl"
        write_traffic_trace(generate_traffic(TrafficConfig(**SMALL)), good)
        assert is_traffic_file(good)
        other = tmp_path / "requests.json"
        other.write_text('[{"num_candidates": 4, "k": 2}]\n')
        assert not is_traffic_file(other)
        assert not is_traffic_file(tmp_path / "missing.jsonl")

    def test_parse_rejects_foreign_schema(self):
        with pytest.raises(ValueError):
            parse_traffic('{"schema": "repro.trace", "version": 1}\n')
        with pytest.raises(ValueError):
            parse_traffic("")

    def test_summary(self):
        trace = generate_traffic(TrafficConfig(**SMALL))
        summary = summarize_traffic(trace)
        assert summary.num_requests == trace.num_requests
        assert summary.arriving_tenants == len(trace.arriving_tenants())
        assert sum(summary.per_class.values()) == trace.num_requests
        lo, hi, mean = summary.candidate_sizes
        assert lo <= mean <= hi


class TestTenancyBridge:
    def test_tenancy_from_trace_mirrors_profiles(self):
        from repro.core.tenancy import tenancy_from_trace

        trace = generate_traffic(TrafficConfig(**SMALL))
        tenancy = tenancy_from_trace(trace)
        assert set(tenancy.policies) == set(trace.tenants)
        for tenant, profile in trace.tenants.items():
            policy = tenancy.policy_for(tenant)
            assert policy.slo == profile.slo
            assert policy.weight == profile.weight
            assert policy.rate == profile.rate
            assert policy.burst == profile.burst

    def test_selection_requests_from_trace(self):
        from repro.core.tenancy import SLO_CLASSES, selection_requests_from_trace
        from repro.harness.runner import shared_tokenizer
        from repro.model.zoo import QWEN3_0_6B

        trace = generate_traffic(TrafficConfig(**dict(SMALL, duration_s=1.0)))
        tokenizer = shared_tokenizer(QWEN3_0_6B)
        requests = selection_requests_from_trace(
            trace, tokenizer, QWEN3_0_6B.max_seq_len, deadlines=True
        )
        assert len(requests) == trace.num_requests
        for record, request in zip(trace.requests, requests):
            slo = SLO_CLASSES[record.slo]
            assert request.tenant == record.tenant
            assert request.arrival == record.arrival
            assert request.priority == slo.priority
            assert request.deadline == slo.deadline_s
            assert request.batch.tokens.shape[0] == record.query.num_candidates
