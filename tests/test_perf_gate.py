"""Unit tests for the CI perf-regression gate (benchmarks/perf_gate.py).

The gate is exercised hermetically on synthetic BENCH_hotpath.json
artifacts: no microbench runs here, just the comparison logic — anchor
normalisation, the median-regression threshold, the batched-speedup
floor, the injected-slowdown self-test and malformed-artifact handling.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_GATE_PATH = Path(__file__).resolve().parent.parent / "benchmarks" / "perf_gate.py"
_spec = importlib.util.spec_from_file_location("perf_gate", _GATE_PATH)
perf_gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(perf_gate)

#: A healthy run: batched scenarios well under the sequential ones.
WALLS = {
    "solo": 1.0e-3,
    "sequential_gang_n4": 3.0e-3,
    "batched_gang_n4": 1.2e-3,
    "sequential_gang_n8": 3.1e-3,
    "batched_gang_n8": 1.3e-3,
}


def artifact(tmp_path, name, walls):
    path = tmp_path / f"{name}.json"
    path.write_text(
        json.dumps(
            {
                "name": "hotpath",
                "config": {"quick": True},
                "metrics": {"wall_time_s_per_step": walls},
            }
        )
    )
    return path


def run_gate(tmp_path, fresh_walls, *extra, baseline_walls=WALLS):
    return perf_gate.main(
        [
            "--baseline", str(artifact(tmp_path, "baseline", baseline_walls)),
            "--fresh", str(artifact(tmp_path, "fresh", fresh_walls)),
            *extra,
        ]
    )


def test_identical_runs_pass(tmp_path):
    assert run_gate(tmp_path, dict(WALLS)) == 0


def test_uniformly_slower_machine_passes(tmp_path):
    """A 3x slower worker scales every scenario including the anchor —
    the normalised ratios are unchanged, so the gate must not trip."""
    assert run_gate(tmp_path, {k: v * 3.0 for k, v in WALLS.items()}) == 0


def test_across_the_board_regression_fails(tmp_path):
    """All gang scenarios 30% slower relative to solo → median trips."""
    slower = {k: v * (1.3 if k != "solo" else 1.0) for k, v in WALLS.items()}
    assert run_gate(tmp_path, slower) == 1


def test_small_regression_within_threshold_passes(tmp_path):
    slower = {k: v * (1.1 if k != "solo" else 1.0) for k, v in WALLS.items()}
    assert run_gate(tmp_path, slower) == 0


def test_threshold_is_configurable(tmp_path):
    slower = {k: v * (1.1 if k != "solo" else 1.0) for k, v in WALLS.items()}
    assert run_gate(tmp_path, slower, "--threshold", "0.05") == 1


def test_lost_batched_speedup_fails_despite_median(tmp_path):
    """Only the batched N=8 scenario regressing hides from the median —
    the dedicated speedup floor must catch it."""
    lost = dict(WALLS, batched_gang_n8=WALLS["batched_gang_n8"] * 2.2)
    assert run_gate(tmp_path, lost) == 1


def test_injected_slowdown_demonstrates_failure(tmp_path):
    """The CI self-test step: identical artifacts + --inject-slowdown
    1.3 must fail, proving the gate can actually fire."""
    assert run_gate(tmp_path, dict(WALLS), "--inject-slowdown", "1.3") == 1


def test_injected_slowdown_below_threshold_passes(tmp_path):
    assert run_gate(tmp_path, dict(WALLS), "--inject-slowdown", "1.1") == 0


@pytest.mark.parametrize("missing", ["solo", "batched_gang_n8"])
def test_missing_scenario_is_an_error_not_a_pass(tmp_path, missing):
    broken = {k: v for k, v in WALLS.items() if k != missing}
    assert run_gate(tmp_path, broken) == 2


def test_malformed_artifact_is_an_error(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{not json")
    good = artifact(tmp_path, "baseline", WALLS)
    assert perf_gate.main(["--baseline", str(good), "--fresh", str(path)]) == 2


#: A healthy data-plane artifact: well over the 2.0x floor.
PLANE_METRICS = {"speedup_cached": 4.5, "identical_selections": True}


def plane_artifact(tmp_path, name, metrics):
    path = tmp_path / f"{name}.json"
    path.write_text(
        json.dumps(
            {"name": "data_plane", "config": {"quick": True}, "metrics": metrics}
        )
    )
    return path


def run_gate_with_plane(tmp_path, fresh_metrics, *extra,
                        baseline_metrics=PLANE_METRICS):
    return run_gate(
        tmp_path,
        dict(WALLS),
        "--data-plane-baseline",
        str(plane_artifact(tmp_path, "plane_baseline", baseline_metrics)),
        "--data-plane-fresh",
        str(plane_artifact(tmp_path, "plane_fresh", fresh_metrics)),
        *extra,
    )


def test_data_plane_identical_runs_pass(tmp_path):
    assert run_gate_with_plane(tmp_path, dict(PLANE_METRICS)) == 0


def test_data_plane_lost_speedup_fails(tmp_path):
    """The cached speedup falling under the 2.0x floor fails the gate
    even with zero regression vs the (equally bad) baseline."""
    lost = dict(PLANE_METRICS, speedup_cached=1.5)
    assert run_gate_with_plane(tmp_path, lost, baseline_metrics=lost) == 1


def test_data_plane_regression_fails(tmp_path):
    """Above the floor but >20% below the committed baseline: a real
    regression the floor alone would wave through."""
    regressed = dict(PLANE_METRICS, speedup_cached=3.0)
    assert run_gate_with_plane(tmp_path, regressed) == 1


def test_data_plane_small_regression_passes(tmp_path):
    assert run_gate_with_plane(
        tmp_path, dict(PLANE_METRICS, speedup_cached=4.0)
    ) == 0


def test_data_plane_floor_is_configurable(tmp_path):
    steady = dict(PLANE_METRICS, speedup_cached=4.5)
    assert run_gate_with_plane(
        tmp_path, steady, "--min-cache-speedup", "5.0"
    ) == 1


def test_data_plane_inexact_selections_fail(tmp_path):
    """A cache that changes answers must never pass, whatever the speedup."""
    inexact = dict(PLANE_METRICS, identical_selections=False)
    assert run_gate_with_plane(tmp_path, inexact) == 1


def test_data_plane_injected_slowdown_demonstrates_failure(tmp_path):
    """The CI self-test covers the data-plane check too: the injected
    factor divides the fresh cached speedup below the floor."""
    assert run_gate_with_plane(tmp_path, dict(PLANE_METRICS),
                               "--inject-slowdown", "3.0") == 1


def test_data_plane_malformed_artifact_is_an_error(tmp_path):
    assert run_gate_with_plane(tmp_path, {"speedup_cached": "fast"}) == 2


def test_data_plane_flags_go_together(tmp_path):
    with pytest.raises(SystemExit):
        run_gate(
            tmp_path,
            dict(WALLS),
            "--data-plane-fresh",
            str(plane_artifact(tmp_path, "plane_fresh", PLANE_METRICS)),
        )
