"""Unit tests for the model registry (Table 1 of the paper)."""

import pytest

from repro.model.zoo import (
    BGE_M3,
    BGE_MINICPM,
    PAPER_MODELS,
    QWEN3_0_6B,
    QWEN3_4B,
    QWEN3_8B,
    ModelConfig,
    get_model_config,
    list_models,
    register_model,
)


class TestTable1:
    def test_five_paper_models(self):
        assert len(PAPER_MODELS) == 5

    def test_architectures_match_table1(self):
        assert QWEN3_0_6B.architecture == "decoder"
        assert QWEN3_4B.architecture == "decoder"
        assert QWEN3_8B.architecture == "decoder"
        assert BGE_MINICPM.architecture == "decoder"
        assert BGE_M3.architecture == "encoder"

    def test_qwen_family_shares_vocab(self):
        assert QWEN3_0_6B.vocab_size == QWEN3_4B.vocab_size == QWEN3_8B.vocab_size == 151_669

    def test_layer_counts(self):
        assert QWEN3_0_6B.num_layers == 28
        assert BGE_MINICPM.num_layers == 40
        assert BGE_M3.num_layers == 24

    def test_qwen8b_models_overfitting(self):
        """§6.2 attributes Qwen3-8B's inverse threshold trend to
        over-fitting; the registry encodes it as late-layer noise."""
        assert QWEN3_8B.semantics.late_overfit_noise > 0
        assert QWEN3_0_6B.semantics.late_overfit_noise == 0

    def test_bge_family_uses_narrow_threshold_range(self):
        """Figure 10 sweeps 0.1–0.9 for Qwen but only ~0.05–0.4 for BGE."""
        assert BGE_M3.threshold_range[1] <= 0.5
        assert QWEN3_0_6B.threshold_range[1] >= 0.8


class TestRegistry:
    def test_lookup_by_name(self):
        assert get_model_config("qwen3-reranker-0.6b") is QWEN3_0_6B

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="qwen3-reranker-0.6b"):
            get_model_config("qwen-unknown")

    def test_list_models_sorted(self):
        models = list_models()
        assert models == sorted(models)
        assert len(models) >= 5

    def test_register_custom_model(self):
        custom = ModelConfig(
            name="test-tiny-reranker",
            params_label="10M",
            num_layers=2,
            hidden_dim=64,
            num_heads=4,
            ffn_dim=128,
            vocab_size=1000,
            architecture="decoder",
        )
        register_model(custom)
        assert get_model_config("test-tiny-reranker") is custom


class TestValidation:
    def _base(self, **overrides):
        kwargs = dict(
            name="x",
            params_label="x",
            num_layers=2,
            hidden_dim=64,
            num_heads=4,
            ffn_dim=128,
            vocab_size=1000,
            architecture="decoder",
        )
        kwargs.update(overrides)
        return kwargs

    def test_unknown_architecture_rejected(self):
        with pytest.raises(ValueError):
            ModelConfig(**self._base(architecture="mamba"))

    def test_heads_must_divide_hidden(self):
        with pytest.raises(ValueError):
            ModelConfig(**self._base(hidden_dim=65))

    def test_sim_heads_must_divide_sim_hidden(self):
        with pytest.raises(ValueError):
            ModelConfig(**self._base(sim_hidden=50, sim_heads=3))

    def test_positive_layers_and_vocab(self):
        with pytest.raises(ValueError):
            ModelConfig(**self._base(num_layers=0))
        with pytest.raises(ValueError):
            ModelConfig(**self._base(vocab_size=0))

    def test_is_decoder_property(self):
        assert QWEN3_0_6B.is_decoder
        assert not BGE_M3.is_decoder
