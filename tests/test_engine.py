"""Unit and behaviour tests for PrismEngine (monolithic forwarding)."""

import numpy as np
import pytest

from repro.core.config import PrismConfig
from repro.core.engine import PrismEngine
from repro.data.datasets import get_dataset
from repro.data.workloads import build_batch
from repro.device.platforms import get_profile
from repro.harness.runner import shared_model, shared_tokenizer
from repro.model.zoo import QWEN3_0_6B


def make_batch(num_candidates=20, dataset="wikipedia", query_idx=0):
    spec = get_dataset(dataset)
    query = spec.queries(query_idx + 1, num_candidates)[query_idx]
    tokenizer = shared_tokenizer(QWEN3_0_6B)
    return query, build_batch(query, tokenizer, QWEN3_0_6B.max_seq_len)


def make_engine(config=None, platform="nvidia_5070"):
    device = get_profile(platform).create()
    engine = PrismEngine(shared_model(QWEN3_0_6B), device, config or PrismConfig(numerics=False))
    engine.prepare()
    return engine


class TestLifecycle:
    def test_rerank_before_prepare_rejected(self):
        device = get_profile("nvidia_5070").create()
        engine = PrismEngine(shared_model(QWEN3_0_6B), device, PrismConfig(numerics=False))
        _, batch = make_batch()
        with pytest.raises(RuntimeError):
            engine.rerank(batch, 5)

    def test_prepare_idempotent(self):
        engine = make_engine()
        in_use = engine.device.memory.in_use
        engine.prepare()
        assert engine.device.memory.in_use == in_use

    def test_invalid_k_rejected(self):
        engine = make_engine()
        _, batch = make_batch()
        with pytest.raises(ValueError):
            engine.rerank(batch, 0)

    def test_k_clamped_to_pool(self):
        engine = make_engine()
        _, batch = make_batch(num_candidates=5)
        result = engine.rerank(batch, 50)
        assert result.k == 5


class TestSelectionQuality:
    def test_no_pruning_matches_reference_ranking(self):
        """With pruning off, PRISM returns exactly the model's top-K."""
        config = PrismConfig(pruning_enabled=False, numerics=False)
        engine = make_engine(config)
        _, batch = make_batch()
        result = engine.rerank(batch, 10)
        reference = np.argsort(-engine.model.full_forward(batch, numerics=False))[:10]
        assert set(result.top_indices.tolist()) == set(reference.tolist())

    def test_pruned_and_unpruned_topk_agree(self):
        """Progressive cluster pruning must not change the top-K set
        (the paper's core precision claim, Table 3)."""
        _, batch = make_batch()
        pruned = make_engine(PrismConfig(numerics=False)).rerank(batch, 10)
        unpruned = make_engine(PrismConfig(pruning_enabled=False, numerics=False)).rerank(batch, 10)
        overlap = len(set(pruned.top_indices.tolist()) & set(unpruned.top_indices.tolist()))
        assert overlap >= 9  # at most one borderline swap

    def test_deterministic_across_runs(self):
        _, batch = make_batch()
        a = make_engine().rerank(batch, 10)
        b = make_engine().rerank(batch, 10)
        assert np.array_equal(a.top_indices, b.top_indices)
        assert a.latency_seconds == pytest.approx(b.latency_seconds)

    def test_exact_rank_mode_returns_final_scores(self):
        """§7: exact mode winners carry the model's true final scores."""
        config = PrismConfig(exact_rank_mode=True, numerics=False)
        engine = make_engine(config)
        _, batch = make_batch()
        result = engine.rerank(batch, 3)
        final = engine.model.dynamics.final_scores(batch.relevance, batch.uids)
        for idx, score in zip(result.top_indices, result.top_scores):
            assert score == pytest.approx(final[int(idx)])

    def test_exact_rank_mode_orders_by_final_score(self):
        config = PrismConfig(exact_rank_mode=True, numerics=False)
        engine = make_engine(config)
        _, batch = make_batch()
        result = engine.rerank(batch, 5)
        assert (np.diff(result.top_scores) <= 1e-12).all()


class TestPruningBehaviour:
    def test_pruning_reduces_candidate_layers(self):
        _, batch = make_batch()
        pruned = make_engine(PrismConfig(numerics=False)).rerank(batch, 10)
        full = make_engine(PrismConfig(pruning_enabled=False, numerics=False)).rerank(batch, 10)
        assert pruned.candidate_layers < full.candidate_layers

    def test_pruning_reduces_latency(self):
        _, batch = make_batch()
        pruned = make_engine(PrismConfig(numerics=False)).rerank(batch, 10)
        full = make_engine(PrismConfig(pruning_enabled=False, numerics=False)).rerank(batch, 10)
        assert pruned.latency_seconds < full.latency_seconds

    def test_prune_events_recorded(self):
        _, batch = make_batch()
        result = make_engine(PrismConfig(numerics=False)).rerank(batch, 10)
        assert result.prune_events
        event = result.prune_events[0]
        assert event.layer >= 1
        assert event.num_selected + event.num_dropped + event.num_deferred == 20

    def test_lower_threshold_prunes_earlier(self):
        _, batch = make_batch()
        aggressive = make_engine(PrismConfig(numerics=False).with_threshold(0.05)).rerank(batch, 10)
        conservative = make_engine(PrismConfig(numerics=False).with_threshold(0.8)).rerank(batch, 10)
        assert aggressive.candidate_layers <= conservative.candidate_layers

    def test_min_layers_respected(self):
        config = PrismConfig(numerics=False, min_layers_before_pruning=10).with_threshold(0.01)
        result = make_engine(config).rerank(make_batch()[1], 10)
        for event in result.prune_events:
            assert event.layer >= 10

    def test_early_termination_flag(self):
        config = PrismConfig(numerics=False).with_threshold(0.05)
        result = make_engine(config).rerank(make_batch()[1], 10)
        if result.layers_executed < QWEN3_0_6B.num_layers:
            assert result.terminated_early


class TestMemoryBehaviour:
    def test_streaming_bounds_weight_residency(self):
        """§4.2: streamed weights peak at ~2 layers, far below the
        full 28-layer resident set."""
        from repro.model import costs

        engine = make_engine(PrismConfig(numerics=False))
        engine.rerank(make_batch()[1], 10)
        stats = engine.device.memory.stats()
        weights_peak = stats.peak_by_category.get("weights", 0)
        full_set = costs.all_layer_weight_bytes(QWEN3_0_6B)
        assert weights_peak < 0.2 * full_set

    def test_no_streaming_keeps_all_layers(self):
        from repro.model import costs

        config = PrismConfig(layer_streaming=False, numerics=False)
        engine = make_engine(config)
        engine.rerank(make_batch()[1], 10)
        weights = engine.device.memory.in_use_by_category("weights")
        assert weights >= costs.all_layer_weight_bytes(QWEN3_0_6B)

    def test_embedding_cache_shrinks_embedding_memory(self):
        from repro.model import costs

        with_cache = make_engine(PrismConfig(numerics=False))
        embedding_bytes = with_cache.device.memory.in_use_by_category("embedding")
        assert embedding_bytes < 0.2 * costs.embedding_table_bytes(QWEN3_0_6B)

    def test_no_cache_loads_full_table(self):
        from repro.model import costs

        config = PrismConfig(embedding_cache=False, numerics=False)
        engine = make_engine(config)
        embedding_bytes = engine.device.memory.in_use_by_category("embedding")
        assert embedding_bytes == costs.embedding_table_bytes(QWEN3_0_6B)

    def test_chunking_caps_intermediates(self):
        config = PrismConfig(numerics=False)
        engine = make_engine(config)
        engine.rerank(make_batch(num_candidates=60)[1], 10)
        stats = engine.device.memory.stats()
        inter_peak = stats.peak_by_category.get("intermediate", 0)
        assert inter_peak <= config.chunk_memory_budget

    def test_monolithic_batch_inflates_intermediates_without_chunking(self):
        config = PrismConfig(chunked_execution=False, numerics=False)
        engine = make_engine(config)
        engine.rerank(make_batch(num_candidates=60)[1], 10)
        inter_peak = engine.device.memory.stats().peak_by_category.get("intermediate", 0)
        assert inter_peak > PrismConfig().chunk_memory_budget

    def test_memory_returns_to_baseline_after_request(self):
        engine = make_engine(PrismConfig(numerics=False))
        before = engine.device.memory.in_use
        engine.rerank(make_batch()[1], 10)
        assert engine.device.memory.in_use == before

    def test_chunk_size_reported(self):
        result = make_engine(PrismConfig(numerics=False)).rerank(make_batch()[1], 10)
        assert result.chunk_size is not None and result.chunk_size >= 1


class TestHiddenOffload:
    def test_forced_offload_bounds_hidden_memory(self):
        config = PrismConfig(hidden_offload="on", numerics=False)
        engine = make_engine(config)
        result = engine.rerank(make_batch(num_candidates=60)[1], 10)
        hidden_peak = engine.device.memory.stats().peak_by_category.get("hidden", 0)
        from repro.model import costs

        per_cand = costs.hidden_state_bytes_per_candidate(QWEN3_0_6B, 512)
        assert hidden_peak <= 3 * result.chunk_size * per_cand + per_cand

    def test_offload_matches_in_memory_selection(self):
        _, batch = make_batch(num_candidates=40)
        on = make_engine(PrismConfig(hidden_offload="on", numerics=False)).rerank(batch, 10)
        off = make_engine(PrismConfig(hidden_offload="off", numerics=False)).rerank(batch, 10)
        assert set(on.top_indices.tolist()) == set(off.top_indices.tolist())


class TestNumericsParity:
    def test_numerics_and_fast_path_same_selection(self):
        """The numpy tensor path must select the same top-K as the
        fast semantic path — identical scores by construction."""
        _, batch = make_batch(num_candidates=8)
        fast = make_engine(PrismConfig(numerics=False)).rerank(batch, 4)
        slow = make_engine(PrismConfig(numerics=True)).rerank(batch, 4)
        assert set(fast.top_indices.tolist()) == set(slow.top_indices.tolist())
        assert fast.latency_seconds == pytest.approx(slow.latency_seconds)
