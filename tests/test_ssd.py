"""Unit tests for the SSD model and its serialized I/O stream."""

import pytest

from repro.device.clock import VirtualClock
from repro.device.ssd import SSDDevice, SSDModel


@pytest.fixture
def clock():
    return VirtualClock()


@pytest.fixture
def ssd(clock):
    # 1 GB/s read, 0.5 GB/s write, 1 ms fixed latency → easy arithmetic.
    return SSDDevice(clock, SSDModel(read_bandwidth=1e9, write_bandwidth=0.5e9, latency=1e-3))


class TestModel:
    def test_read_time_formula(self):
        model = SSDModel(read_bandwidth=1e9, write_bandwidth=1e9, latency=1e-3)
        assert model.read_time(1_000_000) == pytest.approx(1e-3 + 1e-3)

    def test_write_time_uses_write_bandwidth(self):
        model = SSDModel(read_bandwidth=1e9, write_bandwidth=0.5e9, latency=0.0)
        assert model.write_time(1_000_000) == pytest.approx(2e-3)

    def test_zero_byte_read_costs_latency_only(self):
        model = SSDModel(read_bandwidth=1e9, write_bandwidth=1e9, latency=5e-4)
        assert model.read_time(0) == pytest.approx(5e-4)

    def test_negative_size_rejected(self):
        model = SSDModel(read_bandwidth=1e9, write_bandwidth=1e9)
        with pytest.raises(ValueError):
            model.read_time(-1)
        with pytest.raises(ValueError):
            model.write_time(-1)

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            SSDModel(read_bandwidth=0, write_bandwidth=1e9)
        with pytest.raises(ValueError):
            SSDModel(read_bandwidth=1e9, write_bandwidth=-1)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            SSDModel(read_bandwidth=1e9, write_bandwidth=1e9, latency=-1e-3)


class TestSynchronousIO:
    def test_read_sync_advances_clock(self, clock, ssd):
        ssd.read_sync("blob", 1_000_000)
        assert clock.now == pytest.approx(2e-3)

    def test_write_sync_advances_clock(self, clock, ssd):
        ssd.write_sync("blob", 1_000_000)
        assert clock.now == pytest.approx(3e-3)  # 1ms latency + 2ms transfer

    def test_sequential_syncs_accumulate(self, clock, ssd):
        ssd.read_sync("a", 1_000_000)
        ssd.read_sync("b", 1_000_000)
        assert clock.now == pytest.approx(4e-3)


class TestAsynchronousIO:
    def test_read_async_does_not_advance_clock(self, clock, ssd):
        ssd.read_async("a", 10_000_000)
        assert clock.now == 0.0

    def test_wait_advances_to_completion(self, clock, ssd):
        ssd.read_async("a", 10_000_000)  # 1ms + 10ms
        ssd.wait("a")
        assert clock.now == pytest.approx(11e-3)

    def test_wait_is_noop_when_already_complete(self, clock, ssd):
        ssd.read_async("a", 1_000_000)
        clock.advance(1.0)  # compute long past completion
        ssd.wait("a")
        assert clock.now == pytest.approx(1.0)

    def test_wait_unknown_tag_raises(self, ssd):
        with pytest.raises(KeyError):
            ssd.wait("ghost")

    def test_wait_consumes_the_request(self, ssd):
        ssd.read_async("a", 1000)
        ssd.wait("a")
        with pytest.raises(KeyError):
            ssd.wait("a")

    def test_is_pending(self, ssd):
        ssd.read_async("a", 1000)
        assert ssd.is_pending("a")
        ssd.wait("a")
        assert not ssd.is_pending("a")

    def test_drain_waits_for_everything(self, clock, ssd):
        ssd.read_async("a", 1_000_000)
        ssd.read_async("b", 1_000_000)
        ssd.drain()
        assert not ssd.is_pending("a") and not ssd.is_pending("b")
        assert clock.now == pytest.approx(4e-3)


class TestStreamSerialization:
    def test_requests_queue_in_issue_order(self, ssd):
        first = ssd.read_async("a", 10_000_000)
        second = ssd.read_async("b", 10_000_000)
        # Second starts when first completes.
        assert second.start_time == pytest.approx(first.complete_time)

    def test_stream_idles_until_next_issue(self, clock, ssd):
        req = ssd.read_async("a", 1_000_000)
        clock.advance(1.0)
        later = ssd.read_async("b", 1_000_000)
        assert later.start_time == pytest.approx(1.0)
        assert later.start_time > req.complete_time

    def test_stream_free_at_tracks_backlog(self, ssd):
        ssd.read_async("a", 10_000_000)
        ssd.read_async("b", 10_000_000)
        assert ssd.stream_free_at == pytest.approx(2 * 11e-3)

    def test_sync_read_queues_behind_async(self, clock, ssd):
        ssd.read_async("a", 10_000_000)  # completes at 11ms
        ssd.read_sync("b", 1_000_000)  # must wait for the stream
        assert clock.now == pytest.approx(11e-3 + 2e-3)


class TestAccounting:
    def test_byte_totals(self, ssd):
        ssd.read_sync("a", 1000)
        ssd.read_async("b", 500)
        ssd.write_sync("c", 2000)
        assert ssd.total_read_bytes == 1500
        assert ssd.total_write_bytes == 2000

    def test_request_log_records_everything(self, ssd):
        ssd.read_sync("a", 1000)
        ssd.write_async("b", 500)
        kinds = [req.kind for req in ssd.request_log]
        assert kinds == ["read", "write"]
