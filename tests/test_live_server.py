"""Tests for the live progress server + timeline export (DESIGN.md §14).

Covers the HTTP surfaces (`/metrics` exposition, `/events` SSE framing
and filters, `/healthz`), the incremental trace follower behind
``cli trace tail --follow``, Chrome trace-event timeline export, and
the ``serve --live-port`` / ``trace timeline`` / ``live`` CLI wiring.
"""

import json
import re
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.events import EventLog
from repro.core.trace import read_trace, timeline_events, write_timeline
from repro.harness.cli import main
from repro.harness.live import LiveServer, LiveTelemetry, follow_trace_lines, sse_frame


def _get(url: str, timeout: float = 10.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, response.headers, response.read().decode()


@pytest.fixture()
def server():
    log = EventLog()
    live = LiveServer(log)  # port 0: ephemeral
    live.start()
    yield log, live
    live.close()


def _emit_lifecycle(log: EventLog) -> None:
    log.emit("admit", at=0.0, tier="fleet", request="q0", tenant="acme", arrival=0.0)
    log.emit("dispatch", at=0.1, tier="fleet", request="q0", tenant="acme")
    log.emit("complete", at=0.5, tier="fleet", request="q0", tenant="acme", latency=0.5)
    log.emit("admit", at=0.0, tier="fleet", request="q1", tenant="beta", arrival=0.0)
    log.emit("shed", at=0.2, tier="fleet", request="q1", tenant="beta", detail="rate_limit")


class TestEndpoints:
    def test_metrics_scrape_is_prometheus_text(self, server):
        log, live = server
        _emit_lifecycle(log)
        status, headers, body = _get(live.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "repro_requests_completed_total" in body
        assert 'repro_requests_shed_total{tier="fleet",reason="rate_limit"} 1' in body
        # HELP/TYPE comments present for every family with samples.
        assert "# TYPE repro_requests_completed_total counter" in body

    def test_healthz_reports_liveness(self, server):
        log, live = server
        _emit_lifecycle(log)
        _get(live.url + "/metrics")  # pump
        status, _, body = _get(live.url + "/healthz")
        payload = json.loads(body)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["events"] == len(log)
        assert payload["dropped"] == 0

    def test_unknown_path_404(self, server):
        _, live = server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(live.url + "/nope")
        assert excinfo.value.code == 404

    def test_sse_framing_and_live_follow(self, server):
        log, live = server

        def emit_soon():
            time.sleep(0.2)
            _emit_lifecycle(log)

        threading.Thread(target=emit_soon, daemon=True).start()
        status, headers, body = _get(live.url + "/events?max=3")
        assert status == 200
        assert headers["Content-Type"].startswith("text/event-stream")
        frames = [frame for frame in body.split("\n\n") if frame.strip()]
        assert len(frames) == 3
        for frame in frames:
            lines = frame.splitlines()
            assert lines[0].startswith("event: ")
            assert lines[1].startswith("data: ")
            payload = json.loads(lines[1][len("data: ") :])
            assert lines[0] == f"event: {payload['kind']}"

    def test_sse_filters_and_replay(self, server):
        log, live = server
        _emit_lifecycle(log)
        # replay=1 streams history, so a post-run consumer still sees
        # events; the tenant filter drops beta's lifecycle entirely.
        _, _, body = _get(live.url + "/events?max=2&replay=1&tenant=acme&kind=admit,complete")
        payloads = [
            json.loads(line[len("data: ") :])
            for line in body.splitlines()
            if line.startswith("data: ")
        ]
        assert [p["kind"] for p in payloads] == ["admit", "complete"]
        assert all(p["tenant"] == "acme" for p in payloads)

    def test_sse_bad_filter_rejected(self, server):
        _, live = server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(live.url + "/events?kind=bogus&max=1")
        assert excinfo.value.code == 400

    def test_sse_frame_uses_canonical_line(self):
        log = EventLog()
        log.emit("admit", at=0.0, tier="fleet", request="q0", arrival=0.0)
        event = log.events[0]
        assert sse_frame(event) == f"event: admit\ndata: {event.line()}\n\n".encode()

    def test_consumers_never_perturb_the_log(self, server):
        # The server itself rides subscriptions: emitting with scrapers
        # attached leaves the log byte-identical to an unobserved one.
        log, live = server
        _get(live.url + "/metrics")
        _emit_lifecycle(log)
        _get(live.url + "/metrics")
        bare = EventLog()
        _emit_lifecycle(bare)
        assert log.lines() == bare.lines()


class TestLiveTelemetry:
    def test_drain_folds_everything(self):
        log = EventLog()
        telemetry = LiveTelemetry(log)
        _emit_lifecycle(log)
        folded = telemetry.drain()
        assert folded == len(log)
        assert telemetry.collector.completed.value("fleet") == 1
        telemetry.close()
        assert log.subscriber_count == 0


class TestFollowTraceLines:
    def test_incremental_append_yields_new_lines(self, tmp_path):
        path = tmp_path / "grow.jsonl"
        path.write_text("one\ntwo\n")
        follower = follow_trace_lines(path, poll_s=0.01, idle_timeout_s=0.05)
        assert next(follower) == "one"
        assert next(follower) == "two"
        with path.open("a") as handle:
            handle.write("three\n")
        assert next(follower) == "three"

    def test_partial_line_buffered_until_newline(self, tmp_path):
        path = tmp_path / "partial.jsonl"
        path.write_text('{"half":')
        follower = follow_trace_lines(path, poll_s=0.01, idle_timeout_s=0.05)
        with path.open("a") as handle:
            handle.write(' true}\n')
        assert next(follower) == '{"half": true}'

    def test_idle_timeout_terminates(self, tmp_path):
        path = tmp_path / "static.jsonl"
        path.write_text("only\n")
        lines = list(follow_trace_lines(path, poll_s=0.01, idle_timeout_s=0.05))
        assert lines == ["only"]

    def test_truncation_restarts_from_zero(self, tmp_path):
        path = tmp_path / "rotate.jsonl"
        path.write_text("aaaa\nbbbb\n")
        follower = follow_trace_lines(path, poll_s=0.01, idle_timeout_s=0.2)
        assert next(follower) == "aaaa"
        assert next(follower) == "bbbb"
        path.write_text("cc\n")  # rotated: shorter than the old offset
        assert next(follower) == "cc"


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    out = tmp_path_factory.mktemp("live") / "deadline.jsonl"
    assert main(["trace", "record", str(out), "--scenario", "deadline", "--quick"]) == 0
    return out


class TestTimeline:
    def test_spans_nest_and_load_as_chrome_trace(self, recorded, tmp_path):
        out_path = recorded
        _, events, _ = read_trace(out_path)
        rendered = timeline_events(events)
        spans = [e for e in rendered if e["ph"] == "X"]
        metas = [e for e in rendered if e["ph"] == "M"]
        assert spans and metas
        request_spans = [s for s in spans if s["name"].startswith("request ")]
        # One whole-lifetime span per terminal request.
        terminals = [
            e for e in events
            if e.tier != "trace" and e.kind in ("complete", "shed", "cancel", "fail")
        ]
        assert len(request_spans) == len(terminals)
        for span in spans:
            assert span["dur"] >= 0.0
            assert span["ts"] >= 0.0
        # Child spans stay inside their request's envelope.
        by_tid = {}
        for span in request_spans:
            by_tid[(span["pid"], span["tid"])] = span
        for span in spans:
            parent = by_tid.get((span["pid"], span["tid"]))
            if parent is None or span is parent:
                continue
            assert span["ts"] >= parent["ts"] - 1e-6
            assert span["ts"] + span["dur"] <= parent["ts"] + parent["dur"] + 1e-6

    def test_write_timeline_is_loadable_json(self, recorded, tmp_path):
        out_path = recorded
        _, events, _ = read_trace(out_path)
        json_path = tmp_path / "timeline.json"
        count = write_timeline(events, json_path)
        payload = json.loads(json_path.read_text())
        assert set(payload) == {"traceEvents", "displayTimeUnit"}
        assert len(payload["traceEvents"]) == count > 0

    def test_status_and_tenant_ride_span_args(self):
        log = EventLog()
        log.emit("admit", at=0.0, tier="fleet", request="q", tenant="t", arrival=0.0)
        log.emit("shed", at=0.3, tier="fleet", request="q", tenant="t", detail="rate_limit")
        (span,) = [
            e
            for e in timeline_events(log.events)
            if e["ph"] == "X" and e["name"].startswith("request ")
        ]
        assert span["args"]["status"] == "shed"
        assert span["args"]["detail"] == "rate_limit"
        assert span["args"]["tenant"] == "t"


class TestCli:
    def test_serve_live_port_scrapes_and_holds_equivalence(self, tmp_path, capsys):
        requests = tmp_path / "requests.json"
        requests.write_text(
            json.dumps(
                [
                    {"id": "q0", "k": 2, "num_candidates": 6},
                    {"id": "q1", "k": 2, "num_candidates": 6, "arrival": 0.05},
                ]
            )
        )
        timeline = tmp_path / "timeline.json"
        code = main(
            [
                "serve",
                str(requests),
                "--tier",
                "fleet",
                "--live-port",
                "0",
                "--timeline",
                str(timeline),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "registry == FleetStats" in out
        match = re.search(r"live telemetry at (http://[\d.:]+)", out)
        assert match, out
        assert timeline.exists()
        assert json.loads(timeline.read_text())["traceEvents"]

    def test_trace_timeline_subcommand(self, recorded, tmp_path, capsys):
        out_path = recorded
        json_path = tmp_path / "t.json"
        assert main(["trace", "timeline", str(out_path), "--out", str(json_path)]) == 0
        assert "Perfetto" in capsys.readouterr().out
        assert json.loads(json_path.read_text())["traceEvents"]

    def test_trace_tail_follow_streams_then_times_out(self, recorded, capsys):
        out_path = recorded
        code = main(
            [
                "trace",
                "tail",
                str(out_path),
                "--follow",
                "--idle-timeout",
                "0.2",
                "--poll",
                "0.05",
                "--kind",
                "complete",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        lines = [line for line in out.splitlines() if "/complete" in line]
        assert lines, out
        assert "events followed" in out

    def test_live_dashboard_scrapes_running_server(self, capsys):
        log = EventLog()
        live = LiveServer(log).start()
        try:
            _emit_lifecycle(log)
            assert main(["live", live.url]) == 0
        finally:
            live.close()
        out = capsys.readouterr().out
        assert "live telemetry" in out
        assert "fleet" in out
