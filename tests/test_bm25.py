"""Unit tests for the BM25 keyword index."""

import pytest

from repro.retrieval.bm25 import BM25Index, bm25_scores_dense
from repro.retrieval.corpus import SyntheticCorpus


@pytest.fixture
def index():
    idx = BM25Index()
    idx.add(0, ["apple", "banana", "apple"])
    idx.add(1, ["banana", "cherry"])
    idx.add(2, ["date", "elderberry", "fig", "grape"])
    return idx


class TestIndexing:
    def test_document_count(self, index):
        assert index.num_documents == 3

    def test_avg_doc_length(self, index):
        assert index.avg_doc_length == pytest.approx((3 + 2 + 4) / 3)

    def test_duplicate_doc_id_rejected(self, index):
        with pytest.raises(ValueError):
            index.add(0, ["more", "words"])

    def test_stats(self, index):
        stats = index.stats()
        assert stats.num_documents == 3
        assert stats.num_terms == 7
        assert stats.num_postings == 8  # apple appears once in postings

    def test_empty_index(self):
        idx = BM25Index()
        hits, visited = idx.search(["anything"], top_n=5)
        assert hits == [] and visited == 0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BM25Index(k1=-0.5)
        with pytest.raises(ValueError):
            BM25Index(b=1.5)


class TestIDF:
    def test_rare_terms_weigh_more(self, index):
        assert index.idf("cherry") > index.idf("banana")

    def test_unseen_term_max_idf(self, index):
        assert index.idf("zebra") >= index.idf("cherry")

    def test_never_negative(self, index):
        for term in ("apple", "banana", "cherry", "zebra"):
            assert index.idf(term) >= 0.0

    def test_document_frequency(self, index):
        assert index.document_frequency("banana") == 2
        assert index.document_frequency("zebra") == 0


class TestSearch:
    def test_matching_document_ranks_first(self, index):
        hits, _ = index.search(["cherry"], top_n=3)
        assert hits[0].doc_id == 1

    def test_term_frequency_boosts(self, index):
        hits, _ = index.search(["apple", "banana"], top_n=3)
        assert hits[0].doc_id == 0  # two query terms, apple twice

    def test_results_sorted_descending(self, index):
        hits, _ = index.search(["apple", "banana", "cherry"], top_n=3)
        scores = [h.score for h in hits]
        assert scores == sorted(scores, reverse=True)

    def test_top_n_respected(self, index):
        hits, _ = index.search(["apple", "banana", "cherry"], top_n=1)
        assert len(hits) == 1

    def test_postings_visited_counted(self, index):
        _, visited = index.search(["banana"], top_n=3)
        assert visited == 2

    def test_duplicate_query_terms_counted_once(self, index):
        _, visited_once = index.search(["banana"], top_n=3)
        _, visited_twice = index.search(["banana", "banana"], top_n=3)
        assert visited_once == visited_twice

    def test_no_match(self, index):
        hits, _ = index.search(["zebra"], top_n=3)
        assert hits == []

    def test_invalid_top_n(self, index):
        with pytest.raises(ValueError):
            index.search(["apple"], top_n=0)

    def test_length_normalisation(self):
        """With b=1, longer documents are penalised at equal tf."""
        idx = BM25Index(b=1.0)
        idx.add(0, ["term"] + ["pad"] * 20)
        idx.add(1, ["term", "pad"])
        hits, _ = idx.search(["term"], top_n=2)
        assert hits[0].doc_id == 1

    def test_b_zero_disables_length_normalisation(self):
        idx = BM25Index(b=0.0)
        idx.add(0, ["term"] + ["pad"] * 20)
        idx.add(1, ["term", "pad"])
        hits, _ = idx.search(["term"], top_n=2)
        assert hits[0].score == pytest.approx(hits[1].score)


class TestCostModel:
    def test_cost_grows_with_postings(self, index):
        assert index.search_cost_seconds(1000) > index.search_cost_seconds(10)

    def test_negative_postings_rejected(self, index):
        with pytest.raises(ValueError):
            index.search_cost_seconds(-1)

    def test_index_bytes_positive(self, index):
        assert index.index_bytes() > 0


class TestOnCorpus:
    def test_topical_queries_retrieve_same_topic(self):
        corpus = SyntheticCorpus(num_docs=100, num_topics=5, words_per_doc=60)
        index = BM25Index()
        index.add_documents(corpus.documents)
        query = corpus.make_query(0, topic_id=2)
        hits, _ = index.search(query.words, top_n=10)
        assert hits
        topics = [corpus.document(h.doc_id).topic_id for h in hits]
        assert topics.count(2) >= len(topics) * 0.8

    def test_dense_scores_helper(self, index):
        scores = bm25_scores_dense(index, ("banana",), 3)
        assert scores.shape == (3,)
        assert scores[2] == 0.0
        assert scores[0] > 0 and scores[1] > 0
