"""Unit tests for the flat and IVF vector indexes."""

import numpy as np
import pytest

from repro.retrieval.vector_index import FlatIndex, IVFIndex, recall_at_n


def unit(v):
    return v / np.linalg.norm(v)


@pytest.fixture
def corpus_vectors():
    rng = np.random.default_rng(0)
    # Three well-separated directions with 20 noisy members each.
    centers = [unit(rng.standard_normal(16)) for _ in range(3)]
    vectors, ids = [], []
    for c, center in enumerate(centers):
        for i in range(20):
            noisy = unit(center + 0.25 * rng.standard_normal(16))
            vectors.append(noisy)
            ids.append(c * 100 + i)
    return ids, np.stack(vectors), centers


class TestFlatIndex:
    def test_exact_top_n(self, corpus_vectors):
        ids, vectors, centers = corpus_vectors
        index = FlatIndex(16)
        index.add_batch(ids, vectors)
        outcome = index.search(centers[1], top_n=5)
        sims = vectors @ centers[1]
        expected = [ids[i] for i in np.argsort(-sims)[:5]]
        assert outcome.ids() == expected

    def test_distances_counted(self, corpus_vectors):
        ids, vectors, centers = corpus_vectors
        index = FlatIndex(16)
        index.add_batch(ids, vectors)
        outcome = index.search(centers[0], top_n=3)
        assert outcome.distances_computed == len(ids)

    def test_empty_index(self):
        index = FlatIndex(8)
        outcome = index.search(np.ones(8), top_n=3)
        assert outcome.hits == []

    def test_wrong_dim_rejected(self):
        index = FlatIndex(8)
        with pytest.raises(ValueError):
            index.add(0, np.ones(4))

    def test_invalid_top_n(self):
        index = FlatIndex(4)
        index.add(0, np.ones(4))
        with pytest.raises(ValueError):
            index.search(np.ones(4), top_n=0)

    def test_incremental_add_invalidates_cache(self):
        index = FlatIndex(4)
        index.add(0, np.array([1.0, 0, 0, 0]))
        index.search(np.array([1.0, 0, 0, 0]), top_n=1)
        index.add(1, np.array([0, 1.0, 0, 0]))
        outcome = index.search(np.array([0, 1.0, 0, 0]), top_n=1)
        assert outcome.ids() == [1]

    def test_memory_bytes(self):
        index = FlatIndex(16)
        index.add(0, np.ones(16))
        assert index.memory_bytes() == 16 * 4
        assert len(index) == 1

    def test_cost_seconds_positive(self, corpus_vectors):
        ids, vectors, centers = corpus_vectors
        index = FlatIndex(16)
        index.add_batch(ids, vectors)
        assert index.search(centers[0], top_n=3).cost_seconds() > 0


class TestIVFIndex:
    def test_requires_training(self):
        index = IVFIndex(8)
        with pytest.raises(RuntimeError):
            index.search(np.ones(8), top_n=3)

    def test_training_validations(self):
        index = IVFIndex(8)
        with pytest.raises(ValueError):
            index.train([0], np.ones((1, 4)))  # wrong dim
        with pytest.raises(ValueError):
            index.train([0, 1], np.ones((1, 8)))  # misaligned
        with pytest.raises(ValueError):
            index.train([], np.zeros((0, 8)))  # empty

    def test_lists_partition_corpus(self, corpus_vectors):
        ids, vectors, _ = corpus_vectors
        index = IVFIndex(16, num_lists=6, nprobe=2)
        index.train(ids, vectors)
        assert sum(index.list_sizes()) == len(ids)
        assert index.is_trained

    def test_probing_fewer_lists_computes_fewer_distances(self, corpus_vectors):
        ids, vectors, centers = corpus_vectors
        narrow = IVFIndex(16, num_lists=6, nprobe=1)
        wide = IVFIndex(16, num_lists=6, nprobe=6)
        narrow.train(ids, vectors)
        wide.train(ids, vectors)
        n = narrow.search(centers[0], top_n=5).distances_computed
        w = wide.search(centers[0], top_n=5).distances_computed
        assert n < w

    def test_full_probe_matches_exact_search(self, corpus_vectors):
        ids, vectors, centers = corpus_vectors
        flat = FlatIndex(16)
        flat.add_batch(ids, vectors)
        ivf = IVFIndex(16, num_lists=6, nprobe=6)
        ivf.train(ids, vectors)
        exact = flat.search(centers[2], top_n=10)
        approx = ivf.search(centers[2], top_n=10)
        assert recall_at_n(approx, exact, 10) == 1.0

    def test_recall_improves_with_nprobe(self, corpus_vectors):
        ids, vectors, centers = corpus_vectors
        flat = FlatIndex(16)
        flat.add_batch(ids, vectors)
        recalls = []
        for nprobe in (1, 3, 6):
            ivf = IVFIndex(16, num_lists=6, nprobe=nprobe)
            ivf.train(ids, vectors)
            rs = []
            for center in centers:
                exact = flat.search(center, top_n=10)
                approx = ivf.search(center, top_n=10)
                rs.append(recall_at_n(approx, exact, 10))
            recalls.append(np.mean(rs))
        assert recalls[0] <= recalls[1] <= recalls[2]
        assert recalls[-1] == 1.0

    def test_nprobe_capped_by_lists(self):
        index = IVFIndex(8, num_lists=4, nprobe=10)
        assert index.nprobe == 4

    def test_memory_bytes(self, corpus_vectors):
        ids, vectors, _ = corpus_vectors
        index = IVFIndex(16, num_lists=4)
        assert index.memory_bytes() == 0  # untrained
        index.train(ids, vectors)
        assert index.memory_bytes() > len(ids) * 16 * 4

    def test_deterministic_training(self, corpus_vectors):
        ids, vectors, centers = corpus_vectors
        a = IVFIndex(16, num_lists=4, seed=3)
        b = IVFIndex(16, num_lists=4, seed=3)
        a.train(ids, vectors)
        b.train(ids, vectors)
        assert a.search(centers[0], 5).ids() == b.search(centers[0], 5).ids()

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            IVFIndex(0)
        with pytest.raises(ValueError):
            IVFIndex(8, num_lists=0)
        with pytest.raises(ValueError):
            IVFIndex(8, nprobe=0)


class TestRecallAtN:
    def test_invalid_n(self, corpus_vectors):
        ids, vectors, centers = corpus_vectors
        flat = FlatIndex(16)
        flat.add_batch(ids, vectors)
        outcome = flat.search(centers[0], top_n=5)
        with pytest.raises(ValueError):
            recall_at_n(outcome, outcome, 0)

    def test_empty_truth_vacuous(self):
        from repro.retrieval.vector_index import SearchOutcome

        empty = SearchOutcome(hits=[], distances_computed=0)
        assert recall_at_n(empty, empty, 5) == 1.0
