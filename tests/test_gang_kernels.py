"""Batched gang kernels: equivalence against the sequential path (DESIGN.md §11).

Under the ``fusion`` policy, the ``gang_kernels`` toggle decides whether
a lockstep gang's layer crossings run as one stacked forward per layer
(batched) or one forward per member (sequential).  The contract is
*strict* equivalence: byte-identical selections, byte-identical schedule
traces and identical event-log lines, across every engine family and
through mixed candidate-set sizes, mid-gang cancellation and mid-gang
injected faults.  Only the harness's own wall-clock may differ.
"""

import numpy as np
import pytest

from repro.baselines import (
    HFEngine,
    HFOffloadEngine,
    HFOffloadQuantEngine,
    HFQuantEngine,
    prism_quant_engine,
)
from repro.core.config import PrismConfig
from repro.core.engine import PrismEngine, step_group
from repro.core.events import EventLog
from repro.core.scheduler import DeviceScheduler, SchedulerConfig
from repro.data.datasets import get_dataset
from repro.data.workloads import build_batch
from repro.device.faults import (
    FAULT_REPLICA_STALL,
    FAULT_SSD_READ_ERROR,
    FaultEvent,
)
from repro.device.platforms import get_profile
from repro.harness.runner import shared_model, shared_tokenizer
from repro.model.transformer import GangBatch
from repro.model.zoo import QWEN3_0_6B


def make_batch(num_candidates=12, query_idx=0):
    query = get_dataset("wikipedia").queries(query_idx + 1, num_candidates)[query_idx]
    tokenizer = shared_tokenizer(QWEN3_0_6B)
    return build_batch(query, tokenizer, QWEN3_0_6B.max_seq_len)


def _prism():
    device = get_profile("nvidia_5070").create()
    engine = PrismEngine(shared_model(QWEN3_0_6B), device, PrismConfig())
    engine.prepare()
    return engine


def _prism_quant():
    device = get_profile("nvidia_5070").create()
    engine = prism_quant_engine(shared_model(QWEN3_0_6B), device, PrismConfig.quant())
    engine.prepare()
    return engine


def _baseline(engine_cls):
    device = get_profile("nvidia_5070").create()
    engine = engine_cls(shared_model(QWEN3_0_6B), device)
    engine.prepare()
    return engine


#: name -> fresh prepared engine with numerics ON (the batched kernels
#: only exist on the numerics path), covering every engine family.
ENGINE_FACTORIES = {
    "prism": _prism,
    "prism_quant": _prism_quant,
    "hf": lambda: _baseline(HFEngine),
    "hf_offload": lambda: _baseline(HFOffloadEngine),
    "hf_quant": lambda: _baseline(HFQuantEngine),
    "hf_offload_quant": lambda: _baseline(HFOffloadQuantEngine),
}

#: Mixed candidate-set sizes: the gang members are deliberately ragged.
GANG_SIZES = (12, 7, 4)

SCENARIOS = ("plain", "cancel", "stall", "read_error")


def run_fusion(engine_name, gang_kernels, scenario):
    """One fused-gang drain; returns every observable artifact."""
    engine = ENGINE_FACTORIES[engine_name]()
    engine.gang_kernels = gang_kernels
    log = EventLog()
    engine.device.attach_event_log(log)
    scheduler = DeviceScheduler(
        engine,
        SchedulerConfig(policy="fusion", max_concurrency=4),
        event_log=log,
    )
    now = engine.device.clock.now
    if scenario == "stall":
        # Non-fatal mid-gang fault: the device freezes mid-sweep.
        engine.device.install_faults(
            [FaultEvent(FAULT_REPLICA_STALL, at=now + 0.01, duration=0.05)]
        )
    elif scenario == "read_error":
        # Fatal-to-one-task fault: an SSD read dies mid-gang.
        engine.device.install_faults(
            [FaultEvent(FAULT_SSD_READ_ERROR, at=now + 0.01)]
        )
    for idx, n in enumerate(GANG_SIZES):
        cancel_at = None
        if scenario == "cancel" and idx == 1:
            cancel_at = now + 0.02  # lands at a mid-pass layer boundary
        scheduler.submit_request(
            make_batch(n, idx), k=3, arrival=now, cancel_at=cancel_at
        )
    outcomes = scheduler.drain()
    return {
        "selections": {
            o.request_id: (
                o.result.top_indices.tobytes(),
                o.result.top_scores.tobytes(),
            )
            for o in outcomes
        },
        "trace": scheduler.trace_text(),
        "events": tuple(log.lines()),
        "dropped": [(d.request_id, d.reason, d.at, d.detail) for d in scheduler.dropped],
    }


@pytest.mark.parametrize("engine_name", sorted(ENGINE_FACTORIES))
@pytest.mark.parametrize("scenario", SCENARIOS)
def test_batched_equals_sequential(engine_name, scenario):
    """Byte-identical selections, traces, events and drops — per family,
    through mixed sizes, cancellation and injected faults."""
    batched = run_fusion(engine_name, True, scenario)
    sequential = run_fusion(engine_name, False, scenario)
    assert batched["selections"] == sequential["selections"]
    assert batched["trace"] == sequential["trace"]
    assert batched["events"] == sequential["events"]
    assert batched["dropped"] == sequential["dropped"]


def test_scenarios_actually_bite():
    """The cancel/fault scenarios must exercise their code paths — a
    scenario that drops nothing would vacuously pass the equivalence."""
    assert [d[1] for d in run_fusion("prism", True, "cancel")["dropped"]] == ["cancelled"]
    assert [d[1] for d in run_fusion("prism", True, "read_error")["dropped"]] == ["failed"]
    assert len(run_fusion("prism", True, "plain")["selections"]) == len(GANG_SIZES)


def test_fusion_gang_sweeps_in_lockstep_with_batched_kernels():
    """Batching must not change the schedule shape: the trace still shows
    fused groups the size of the gang."""
    engine = ENGINE_FACTORIES["prism"]()
    scheduler = DeviceScheduler(engine, SchedulerConfig(policy="fusion"))
    now = engine.device.clock.now
    for idx, n in enumerate(GANG_SIZES):
        scheduler.submit_request(make_batch(n, idx), k=3, arrival=now)
    scheduler.drain()
    assert max(scheduler.fused_group_sizes()) == len(GANG_SIZES)


class TestStepGroup:
    """The engine-layer group-step entry point."""

    def test_step_group_matches_individual_steps(self):
        solo = ENGINE_FACTORIES["hf"]()
        grouped = ENGINE_FACTORIES["hf"]()
        solo_tasks = [solo.start(make_batch(n, i), 3) for i, n in enumerate(GANG_SIZES)]
        group_tasks = [
            grouped.start(make_batch(n, i), 3) for i, n in enumerate(GANG_SIZES)
        ]
        while any(not t.done for t in solo_tasks):
            for task in solo_tasks:
                if not task.done:
                    task.step()
        while any(not t.done for t in group_tasks):
            step_group([t for t in group_tasks if not t.done])
        for a, b in zip(solo_tasks, group_tasks):
            assert a.result.top_indices.tobytes() == b.result.top_indices.tobytes()
            assert a.result.top_scores.tobytes() == b.result.top_scores.tobytes()

    def test_step_group_empty(self):
        assert step_group([]) == []

    def test_step_group_rejects_foreign_tasks(self):
        a = ENGINE_FACTORIES["hf"]()
        b = ENGINE_FACTORIES["hf"]()
        tasks = [a.start(make_batch(6, 0), 3), b.start(make_batch(6, 1), 3)]
        with pytest.raises(ValueError):
            a.step_group(tasks)

    def test_step_group_reports_completion_flags(self):
        engine = ENGINE_FACTORIES["hf"]()
        tasks = [engine.start(make_batch(4, i), 2) for i in range(2)]
        total_steps = QWEN3_0_6B.num_layers + 1
        for step in range(total_steps):
            flags = engine.step_group(tasks)
            assert flags == [step == total_steps - 1] * 2


class TestGangBatch:
    """The packing layer underneath the batched kernels."""

    def test_batched_forward_matches_solo_numerics(self):
        """One stacked fused forward over ragged members vs each member
        alone: hidden states agree to the fused kernel's reduced
        precision; scores (the observables) are byte-identical because
        the semantic channel is injected exactly on both paths."""
        model = shared_model(QWEN3_0_6B)
        batched = [model.embed(make_batch(n, i)) for i, n in enumerate(GANG_SIZES)]
        solo = [model.embed(make_batch(n, i)) for i, n in enumerate(GANG_SIZES)]
        for layer in range(3):
            for state in batched:
                model.forward_layer(state, layer, defer=True)
            model.flush_deferred()
            for state in solo:
                model.forward_layer(state, layer)
        for a, b in zip(batched, solo):
            np.testing.assert_allclose(a.hidden, b.hidden, rtol=1e-4, atol=1e-4)
            assert a.hidden.dtype == np.float64  # cast back on unpack
            assert model.score(a).tobytes() == model.score(b).tobytes()

    def test_pack_requires_numerics_states(self):
        model = shared_model(QWEN3_0_6B)
        state = model.embed(make_batch(4, 0), numerics=False)
        with pytest.raises(ValueError):
            GangBatch.pack([state])

    def test_deferred_crossing_flushes_on_score(self):
        model = shared_model(QWEN3_0_6B)
        state = model.embed(make_batch(4, 0))
        model.forward_layer(state, 0, defer=True)
        assert state.pending_layer == 0
        eager = model.embed(make_batch(4, 0))
        model.forward_layer(eager, 0)
        np.testing.assert_array_equal(
            model.score(state), model.score(eager)
        )
        assert state.pending_layer is None

    def test_discard_deferred_skips_the_crossing(self):
        model = shared_model(QWEN3_0_6B)
        state = model.embed(make_batch(4, 0))
        before = state.hidden.copy()
        model.forward_layer(state, 0, defer=True)
        model.discard_deferred(state)
        np.testing.assert_array_equal(state.hidden, before)  # never ran
        assert state.pending_layer is None
        model.flush_deferred()  # no-op: the pool must be clean
        np.testing.assert_array_equal(state.hidden, before)
