"""Golden trace fixtures: exact byte-level reproduction (DESIGN.md §10).

One small recorded trace per serving tier lives under
``tests/fixtures/traces/``.  Each test re-runs the generating scenario
and asserts the rendered JSONL reproduces the committed fixture
byte for byte — the strongest regression net the simulator offers:
any change to scheduling order, cost modelling, routing, event
emission or serialization shows up as a diff on a specific event line.

After an *intentional* behaviour change, regenerate with::

    for s in engine device fleet; do \
      PYTHONPATH=src python -m repro.harness.cli trace record \
        tests/fixtures/traces/$s.jsonl --scenario $s --quick; \
    done

and review the diff — every changed line is a behaviour change being
claimed on purpose.
"""

import json
from pathlib import Path

import pytest

from repro.core.trace import parse_trace, record_trace, replay_trace
from repro.harness.traces import build_scenario

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "traces"
TIERS = ("engine", "device", "fleet")


@pytest.mark.parametrize("name", TIERS)
def test_fixture_reproduces_exactly(name):
    fixture = FIXTURES / f"{name}.jsonl"
    assert fixture.is_file(), (
        f"missing golden fixture {fixture}; regenerate with "
        f"`PYTHONPATH=src python -m repro.harness.cli trace record "
        f"{fixture} --scenario {name} --quick`"
    )
    spec, requests = build_scenario(name, quick=True)
    _, text = record_trace(spec, requests)
    assert text == fixture.read_text(), (
        f"{name} scenario no longer reproduces its golden trace — "
        "behaviour changed; if intentional, regenerate the fixture "
        "(see module docstring) and review the diff"
    )


@pytest.mark.parametrize("name", TIERS)
def test_fixture_replays_event_identical(name):
    """The committed artifact itself replays — record/replay fidelity
    holds against the *stored* bytes, not just an in-memory log."""
    _, report = replay_trace(path=FIXTURES / f"{name}.jsonl")
    assert report.event_identical, (
        f"fixture {name}.jsonl diverged at event {report.first_divergence}: "
        f"{report.recorded_line!r} != {report.replayed_line!r}"
    )


@pytest.mark.parametrize("name", TIERS)
def test_fixture_header_is_versioned(name):
    spec, events, _ = parse_trace((FIXTURES / f"{name}.jsonl").read_text())
    header = json.loads((FIXTURES / f"{name}.jsonl").read_text().splitlines()[0])
    assert header["schema"] == "repro.trace"
    assert header["version"] == 1
    assert header["events_version"] == 1
    assert spec.tier == name
    assert events, "fixture holds no events"
