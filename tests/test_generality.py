"""§7 generality: sequence-level sparsity beyond dedicated rerankers.

The paper's discussion reports that an instruction-tuned LLM used as a
reranker (Qwen3-4B-Instruct) shows the same sequence-level sparsity,
so PRISM's principles extend beyond specialised reranker checkpoints.
"""

import numpy as np
import pytest

from repro.data.datasets import get_dataset
from repro.harness.experiments import fig2_sparsity
from repro.harness.runner import run_system
from repro.model.zoo import QWEN3_4B, get_model_config

LLM_RERANKER = "qwen3-4b-instruct-as-reranker"


class TestSparsityGeneralises:
    def test_gamma_still_converges(self):
        result = fig2_sparsity(model_name=LLM_RERANKER, num_queries=3)
        assert result.gamma[-1] == pytest.approx(1.0)
        assert np.mean(result.gamma[-4:]) > np.mean(result.gamma[:4]) + 0.3

    def test_cluster_gamma_still_stable(self):
        result = fig2_sparsity(model_name=LLM_RERANKER, num_queries=3)
        assert np.mean(result.cluster_gamma_values[4:]) > 0.85

    def test_convergence_later_than_finetuned_reranker(self):
        """Without reranking fine-tuning, rankings stabilise later —
        γ at mid-depth trails the dedicated 4B reranker."""
        llm = fig2_sparsity(model_name=LLM_RERANKER, num_queries=3)
        tuned = fig2_sparsity(model_name=QWEN3_4B.name, num_queries=3)
        mid = len(llm.gamma) // 2
        assert llm.gamma[mid] < tuned.gamma[mid]


class TestPrismOnLLMReranker:
    @pytest.fixture(scope="class")
    def queries(self):
        return get_dataset("wikipedia").queries(3, 20)

    def test_prism_still_reduces_latency(self, queries):
        model = get_model_config(LLM_RERANKER)
        offload = run_system("hf_offload", model, "nvidia_5070", queries, 10)
        prism = run_system("prism", model, "nvidia_5070", queries, 10)
        assert prism.mean_latency < offload.mean_latency

    def test_prism_precision_neutral(self, queries):
        model = get_model_config(LLM_RERANKER)
        offload = run_system("hf_offload", model, "nvidia_5070", queries, 10)
        prism = run_system("prism", model, "nvidia_5070", queries, 10)
        assert abs(prism.mean_precision - offload.mean_precision) < 0.08

    def test_llm_reranker_ranks_less_faithfully(self, queries):
        """The instruction-tuned LLM's noisier judgements track the
        true relevance ordering less faithfully than the fine-tuned
        reranker of the same size (γ against ground truth)."""
        from repro.core.metrics import goodman_kruskal_gamma
        from repro.model.transformer import CrossEncoderModel

        llm = CrossEncoderModel(get_model_config(LLM_RERANKER))
        tuned = CrossEncoderModel(QWEN3_4B)
        llm_gammas, tuned_gammas = [], []
        for query in queries:
            rel, uids = query.relevance(), query.uids()
            llm_gammas.append(
                goodman_kruskal_gamma(llm.dynamics.final_scores(rel, uids), rel)
            )
            tuned_gammas.append(
                goodman_kruskal_gamma(tuned.dynamics.final_scores(rel, uids), rel)
            )
        assert np.mean(llm_gammas) < np.mean(tuned_gammas)

    def test_vanilla_hf_ooms_but_prism_runs(self, queries):
        """A 4B LLM is just as OOM-prone as the 4B reranker; PRISM
        makes it deployable on the edge device."""
        model = get_model_config(LLM_RERANKER)
        assert run_system("hf", model, "nvidia_5070", queries, 10).oom
        assert not run_system("prism", model, "nvidia_5070", queries, 10).oom
