"""Unit tests for CrossEncoderModel: the per-layer forward API."""

import numpy as np
import pytest

from repro.model.transformer import CandidateBatch, CrossEncoderModel
from repro.model.zoo import BGE_M3, QWEN3_0_6B
from repro.text.tokenizer import Tokenizer
from repro.text.vocab import Vocabulary


@pytest.fixture(scope="module")
def model():
    return CrossEncoderModel(QWEN3_0_6B)


def make_batch(config, n=4, seed=0):
    tokenizer = Tokenizer(Vocabulary(config.vocab_size))
    rng = np.random.default_rng(seed)
    query = tokenizer.encode_synthetic(seed + 1, 12)
    docs = [tokenizer.encode_synthetic(seed + 10 + i, 200) for i in range(n)]
    tokens = tokenizer.batch_pairs(query, docs, config.max_seq_len)
    return CandidateBatch(
        tokens=tokens,
        lengths=tokenizer.attention_lengths(tokens),
        relevance=rng.uniform(0.05, 0.95, size=n),
        uids=rng.integers(0, 2**31, size=n),
    )


class TestCandidateBatch:
    def test_size(self, model):
        batch = make_batch(QWEN3_0_6B, n=5)
        assert batch.size == 5

    def test_misaligned_fields_rejected(self):
        with pytest.raises(ValueError):
            CandidateBatch(
                tokens=np.zeros((3, 8), dtype=np.int64),
                lengths=np.array([8, 8]),
                relevance=np.zeros(3),
                uids=np.zeros(3, dtype=np.int64),
            )

    def test_select_subsets_all_fields(self):
        batch = make_batch(QWEN3_0_6B, n=5)
        sub = batch.select(np.array([1, 3]))
        assert sub.size == 2
        assert sub.relevance[0] == batch.relevance[1]
        assert sub.uids[1] == batch.uids[3]


class TestForwardOrdering:
    def test_layers_must_run_in_order(self, model):
        state = model.embed(make_batch(QWEN3_0_6B), numerics=False)
        with pytest.raises(ValueError):
            model.forward_layer(state, 1)  # expected 0 first

    def test_layer_done_advances(self, model):
        state = model.embed(make_batch(QWEN3_0_6B), numerics=False)
        assert state.layer_done == -1
        model.forward_layer(state, 0)
        assert state.layer_done == 0

    def test_cannot_score_before_any_layer(self, model):
        state = model.embed(make_batch(QWEN3_0_6B), numerics=False)
        with pytest.raises(ValueError):
            model.score(state)

    def test_scores_invalidated_by_forward(self, model):
        state = model.embed(make_batch(QWEN3_0_6B), numerics=False)
        model.forward_layer(state, 0)
        model.score(state)
        assert state.scores is not None
        model.forward_layer(state, 1)
        assert state.scores is None


class TestNumericsEquivalence:
    def test_numerics_and_fast_path_scores_match(self):
        """The numpy tensor path and the direct semantic path must give
        identical scores (the injection construction guarantees it)."""
        model = CrossEncoderModel(QWEN3_0_6B)
        batch = make_batch(QWEN3_0_6B, n=3)
        fast = model.full_forward(batch, numerics=False)
        slow = model.full_forward(batch, numerics=True)
        assert np.allclose(fast, slow, atol=1e-9)

    def test_numerics_equivalence_encoder(self):
        model = CrossEncoderModel(BGE_M3)
        batch = make_batch(BGE_M3, n=3)
        fast = model.full_forward(batch, numerics=False)
        slow = model.full_forward(batch, numerics=True)
        assert np.allclose(fast, slow, atol=1e-9)

    def test_intermediate_scores_also_match(self):
        model = CrossEncoderModel(QWEN3_0_6B)
        batch = make_batch(QWEN3_0_6B, n=3)
        state_fast = model.embed(batch, numerics=False)
        state_slow = model.embed(batch, numerics=True)
        for layer in range(4):
            model.forward_layer(state_fast, layer)
            model.forward_layer(state_slow, layer)
        assert np.allclose(model.score(state_fast), model.score(state_slow), atol=1e-9)


class TestFullForward:
    def test_scores_track_relevance(self, model):
        batch = make_batch(QWEN3_0_6B, n=8, seed=3)
        scores = model.full_forward(batch, numerics=False)
        # Rank correlation with true relevance should be strong at the
        # final layer (small residual noise only).
        rank_scores = np.argsort(np.argsort(scores))
        rank_rel = np.argsort(np.argsort(batch.relevance))
        agreement = np.corrcoef(rank_scores, rank_rel)[0, 1]
        assert agreement > 0.8

    def test_deterministic(self, model):
        batch = make_batch(QWEN3_0_6B, n=4, seed=9)
        a = model.full_forward(batch, numerics=False)
        b = model.full_forward(batch, numerics=False)
        assert np.array_equal(a, b)


class TestSimTokens:
    def test_strided_shape(self, model):
        batch = make_batch(QWEN3_0_6B, n=2)
        tokens, sim_lengths = model.sim_tokens(batch)
        assert tokens.shape == (2, QWEN3_0_6B.sim_seq_len)
        assert (sim_lengths >= 1).all()
        assert (sim_lengths <= QWEN3_0_6B.sim_seq_len).all()
