"""Tests for the self-calibrating selection service (§4.1 deployed mode)."""

import numpy as np
import pytest

from repro.core.config import PrismConfig
from repro.core.service import SemanticSelectionService
from repro.data.datasets import get_dataset
from repro.data.workloads import build_batch
from repro.device.platforms import get_profile
from repro.harness.runner import shared_model, shared_tokenizer
from repro.model.zoo import QWEN3_0_6B


@pytest.fixture(scope="module")
def batches():
    tokenizer = shared_tokenizer(QWEN3_0_6B)
    queries = get_dataset("wikipedia").queries(6, 20)
    return [build_batch(q, tokenizer, QWEN3_0_6B.max_seq_len) for q in queries]


def make_service(**kwargs):
    defaults = dict(
        model=shared_model(QWEN3_0_6B),
        profile=get_profile("nvidia_5070"),
        config=PrismConfig(numerics=False),
        sample_rate=0.5,
    )
    defaults.update(kwargs)
    return SemanticSelectionService(**defaults)


class TestValidation:
    def test_bad_precision_target(self):
        with pytest.raises(ValueError):
            make_service(precision_target=0.0)

    def test_bad_sample_rate(self):
        with pytest.raises(ValueError):
            make_service(sample_rate=1.5)

    def test_bad_step(self):
        with pytest.raises(ValueError):
            make_service(step=0.0)

    def test_bad_threshold_range(self):
        with pytest.raises(ValueError):
            make_service(min_threshold=0.5, max_threshold=0.4)


class TestServing:
    def test_select_returns_results(self, batches):
        service = make_service()
        result = service.select(batches[0], 10)
        assert result.k == 10
        assert service.stats.requests_served == 1

    def test_sampling_follows_rate(self, batches):
        service = make_service(sample_rate=0.5)
        for batch in batches:
            service.select(batch, 10)
        assert service.stats.requests_sampled == 3  # 6 requests × 0.5

    def test_full_sampling(self, batches):
        service = make_service(sample_rate=1.0)
        for batch in batches[:3]:
            service.select(batch, 10)
        assert service.pending_samples == 3

    def test_served_results_match_engine_threshold(self, batches):
        service = make_service()
        a = service.select(batches[0], 10)
        direct = service.engine.rerank(batches[0], 10)
        assert set(a.top_indices.tolist()) == set(direct.top_indices.tolist())

    def test_full_sampling_accumulator_never_drifts(self, batches):
        """sample_rate=1.0 must log *every* request: the accumulator
        hits exactly 1.0 each time and resets to exactly 0.0, with no
        float residue skipping requests over a long serving run."""
        service = make_service(sample_rate=1.0)
        for round_no in range(5):
            for batch in batches:
                service.select(batch, 10)
        assert service.stats.requests_sampled == service.stats.requests_served == 30
        assert service._stride.accumulator == 0.0

    def test_fractional_rate_stride(self, batches):
        service = make_service(sample_rate=0.25)
        for _ in range(2):
            for batch in batches:
                service.select(batch, 10)
        assert service.stats.requests_sampled == 3  # 12 requests x 0.25

    def test_forced_sampling_override(self, batches):
        service = make_service(sample_rate=0.25)
        service.select(batches[0], 10, sample=True)
        service.select(batches[1], 10, sample=False)
        assert service.stats.requests_sampled == 1
        assert service.pending_samples == 1
        # Forced decisions must not consume the deterministic stride.
        assert service._stride.accumulator == 0.0

    def test_apply_threshold_clamps(self):
        service = make_service(min_threshold=0.1, max_threshold=0.5)
        assert service.apply_threshold(0.9) == pytest.approx(0.5)
        assert service.apply_threshold(0.01) == pytest.approx(0.1)
        assert service.apply_threshold(0.3) == pytest.approx(0.3)


class TestIdleMaintenance:
    def test_noop_without_samples(self):
        service = make_service(sample_rate=0.5)
        assert service.idle_maintenance() is None

    def test_lowers_threshold_when_precision_holds(self, batches):
        """Our pruning is near-lossless on Wikipedia pools, so sampled
        precision meets the target and the controller walks down."""
        service = make_service(sample_rate=1.0, precision_target=0.8, step=0.05)
        start = service.threshold
        for batch in batches[:4]:
            service.select(batch, 10)
        report = service.idle_maintenance()
        assert report is not None
        assert report.sampled_precision >= 0.8
        assert report.new_threshold == pytest.approx(start - 0.05)

    def test_raises_threshold_when_precision_falls(self, batches, monkeypatch):
        """Inject a low sampled precision: the controller must back off
        upward (the paper's 'raise for precision' branch)."""
        service = make_service(sample_rate=1.0, precision_target=0.95, step=0.05)
        for batch in batches[:2]:
            service.select(batch, 10)
        monkeypatch.setattr(service, "_sampled_precision", lambda: (2, 0.5))
        start = service.threshold
        report = service.idle_maintenance()
        assert report.new_threshold == pytest.approx(start + 0.05)

    def test_threshold_clamped_at_floor(self, batches):
        service = make_service(
            sample_rate=1.0, precision_target=0.5, step=0.5, min_threshold=0.02
        )
        for _ in range(3):
            service.select(batches[0], 10)
            service.idle_maintenance()
        assert service.threshold == pytest.approx(0.02)

    def test_threshold_clamped_at_ceiling(self, batches, monkeypatch):
        """A persistently failing precision target walks the threshold
        up, but never past max_threshold."""
        service = make_service(
            sample_rate=1.0, precision_target=0.99, step=0.5, max_threshold=0.9
        )
        monkeypatch.setattr(service, "_sampled_precision", lambda: (1, 0.0))
        for _ in range(3):
            service.select(batches[0], 10)
            report = service.idle_maintenance()
        assert service.threshold == pytest.approx(0.9)
        assert report is not None and not report.adjusted  # pinned at the bound

    def test_noop_again_after_samples_consumed(self, batches):
        """A pass clears the log; the next idle pass with nothing new
        sampled must return None rather than re-judging stale data."""
        service = make_service(sample_rate=1.0)
        service.select(batches[0], 10)
        assert service.idle_maintenance() is not None
        assert service.idle_maintenance() is None

    def test_samples_cleared_after_pass(self, batches):
        service = make_service(sample_rate=1.0)
        service.select(batches[0], 10)
        service.idle_maintenance()
        assert service.pending_samples == 0

    def test_history_recorded(self, batches):
        service = make_service(sample_rate=1.0)
        service.select(batches[0], 10)
        service.idle_maintenance()
        assert service.stats.maintenance_passes == 1
        assert len(service.stats.history) == 1

    def test_maintenance_does_not_touch_serving_clock(self, batches):
        """Ground-truth re-execution is idle-time work on shadow
        devices — serving latency must not absorb it."""
        service = make_service(sample_rate=1.0)
        service.select(batches[0], 10)
        before = service.device.clock.now
        service.idle_maintenance()
        assert service.device.clock.now == before


class TestClosedLoop:
    def test_converges_to_aggressive_operation(self, batches):
        """Serving rounds interleaved with idle passes walk the
        threshold down while precision holds, making later requests
        faster than the first ones."""
        service = make_service(sample_rate=1.0, precision_target=0.8, step=0.08)
        first = service.select(batches[0], 10).latency_seconds
        for round_no in range(4):
            for batch in batches:
                service.select(batch, 10)
            service.idle_maintenance()
        last = service.select(batches[0], 10).latency_seconds
        assert service.threshold < PrismConfig().dispersion_threshold
        assert last <= first
