"""Unit tests for the byte-accurate memory tracker."""

import pytest

from repro.device.clock import VirtualClock
from repro.device.memory import (
    CATEGORY_HIDDEN,
    CATEGORY_WEIGHTS,
    MemoryError_,
    MemoryTracker,
    MiB,
    OutOfMemoryError,
)


@pytest.fixture
def clock():
    return VirtualClock()


@pytest.fixture
def tracker(clock):
    return MemoryTracker(clock)


class TestAllocFree:
    def test_alloc_increases_in_use(self, tracker):
        tracker.alloc("a", 100)
        assert tracker.in_use == 100

    def test_free_decreases_in_use(self, tracker):
        tracker.alloc("a", 100)
        tracker.free("a")
        assert tracker.in_use == 0

    def test_multiple_allocations_sum(self, tracker):
        tracker.alloc("a", 100)
        tracker.alloc("b", 250)
        assert tracker.in_use == 350

    def test_zero_byte_allocation_allowed(self, tracker):
        tracker.alloc("empty", 0)
        assert tracker.in_use == 0
        tracker.free("empty")

    def test_negative_allocation_rejected(self, tracker):
        with pytest.raises(MemoryError_):
            tracker.alloc("bad", -1)

    def test_duplicate_name_rejected(self, tracker):
        tracker.alloc("a", 10)
        with pytest.raises(MemoryError_):
            tracker.alloc("a", 20)

    def test_name_reusable_after_free(self, tracker):
        tracker.alloc("a", 10)
        tracker.free("a")
        tracker.alloc("a", 30)
        assert tracker.in_use == 30

    def test_free_unknown_rejected(self, tracker):
        with pytest.raises(MemoryError_):
            tracker.free("ghost")

    def test_double_free_rejected(self, tracker):
        tracker.alloc("a", 10)
        tracker.free("a")
        with pytest.raises(MemoryError_):
            tracker.free("a")

    def test_free_if_live(self, tracker):
        tracker.alloc("a", 10)
        assert tracker.free_if_live("a") is True
        assert tracker.free_if_live("a") is False

    def test_is_live_and_live_bytes(self, tracker):
        tracker.alloc("a", 42)
        assert tracker.is_live("a")
        assert tracker.live_bytes("a") == 42
        assert not tracker.is_live("b")
        assert tracker.live_bytes("b") == 0


class TestPeak:
    def test_peak_tracks_maximum(self, tracker):
        tracker.alloc("a", 100)
        tracker.alloc("b", 50)
        tracker.free("a")
        tracker.alloc("c", 20)
        assert tracker.peak == 150
        assert tracker.in_use == 70

    def test_peak_never_decreases(self, tracker):
        tracker.alloc("a", 500)
        tracker.free("a")
        assert tracker.peak == 500


class TestCategories:
    def test_per_category_accounting(self, tracker):
        tracker.alloc("w", 100, CATEGORY_WEIGHTS)
        tracker.alloc("h", 30, CATEGORY_HIDDEN)
        assert tracker.in_use_by_category(CATEGORY_WEIGHTS) == 100
        assert tracker.in_use_by_category(CATEGORY_HIDDEN) == 30

    def test_category_decreases_on_free(self, tracker):
        tracker.alloc("w", 100, CATEGORY_WEIGHTS)
        tracker.free("w")
        assert tracker.in_use_by_category(CATEGORY_WEIGHTS) == 0

    def test_peak_by_category_in_stats(self, tracker):
        tracker.alloc("w1", 100, CATEGORY_WEIGHTS)
        tracker.alloc("w2", 60, CATEGORY_WEIGHTS)
        tracker.free("w1")
        stats = tracker.stats()
        assert stats.peak_by_category[CATEGORY_WEIGHTS] == 160


class TestBudget:
    def test_allocation_within_budget(self, clock):
        tracker = MemoryTracker(clock, budget_bytes=1000)
        tracker.alloc("a", 1000)  # exactly at budget
        assert tracker.in_use == 1000

    def test_allocation_over_budget_raises(self, clock):
        tracker = MemoryTracker(clock, budget_bytes=1000)
        tracker.alloc("a", 800)
        with pytest.raises(OutOfMemoryError) as excinfo:
            tracker.alloc("b", 300)
        err = excinfo.value
        assert err.requested == 300
        assert err.in_use == 800
        assert err.budget == 1000
        assert err.name == "b"

    def test_oom_leaves_state_unchanged(self, clock):
        tracker = MemoryTracker(clock, budget_bytes=100)
        tracker.alloc("a", 90)
        with pytest.raises(OutOfMemoryError):
            tracker.alloc("b", 20)
        assert tracker.in_use == 90
        assert not tracker.is_live("b")

    def test_budget_freed_memory_reusable(self, clock):
        tracker = MemoryTracker(clock, budget_bytes=100)
        tracker.alloc("a", 90)
        tracker.free("a")
        tracker.alloc("b", 95)
        assert tracker.in_use == 95


class TestTimeline:
    def test_timeline_records_staircase(self, clock, tracker):
        tracker.alloc("a", 100)
        clock.advance(1.0)
        tracker.alloc("b", 50)
        clock.advance(1.0)
        tracker.free("a")
        usages = [point.in_use for point in tracker.timeline()]
        assert usages == [100, 150, 50]
        times = [point.time for point in tracker.timeline()]
        assert times == [0.0, 1.0, 2.0]

    def test_same_timestamp_events_collapse(self, tracker):
        tracker.alloc("a", 100)
        tracker.alloc("b", 50)  # same simulated instant
        usages = [point.in_use for point in tracker.timeline()]
        assert usages == [150]

    def test_time_weighted_average(self, clock, tracker):
        tracker.alloc("a", 100)
        clock.advance(1.0)
        tracker.alloc("b", 100)
        clock.advance(3.0)
        tracker.free("b")
        # 1s at 100 + 3s at 200 → 175 average over 4s.
        assert tracker.stats().avg_bytes == pytest.approx(175.0)

    def test_stats_final_bytes(self, clock, tracker):
        tracker.alloc("a", 64 * MiB)
        clock.advance(1.0)
        assert tracker.stats().final_bytes == 64 * MiB


class TestCategoryTimelines:
    def test_category_staircase_tracks_events(self, clock, tracker):
        tracker.alloc("w1", 100, CATEGORY_WEIGHTS)
        clock.advance(1.0)
        tracker.alloc("h1", 40, CATEGORY_HIDDEN)
        clock.advance(1.0)
        tracker.free("w1")
        weights = tracker.category_timeline(CATEGORY_WEIGHTS)
        assert [p.in_use for p in weights] == [100, 0]
        hidden = tracker.category_timeline(CATEGORY_HIDDEN)
        assert [p.in_use for p in hidden] == [40]

    def test_unknown_category_empty(self, tracker):
        assert tracker.category_timeline("nothing") == []

    def test_same_instant_events_collapse(self, tracker):
        tracker.alloc("a", 10, CATEGORY_WEIGHTS)
        tracker.alloc("b", 20, CATEGORY_WEIGHTS)
        series = tracker.category_timeline(CATEGORY_WEIGHTS)
        assert [p.in_use for p in series] == [30]

    def test_category_peak_matches_timeline_max(self, clock, tracker):
        tracker.alloc("a", 50, CATEGORY_HIDDEN)
        clock.advance(0.5)
        tracker.alloc("b", 70, CATEGORY_HIDDEN)
        clock.advance(0.5)
        tracker.free("a")
        series = tracker.category_timeline(CATEGORY_HIDDEN)
        assert max(p.in_use for p in series) == tracker.stats().peak_by_category[CATEGORY_HIDDEN]
