"""Unit tests for the experiment runner."""

import numpy as np
import pytest

from repro.core.config import PrismConfig
from repro.data.datasets import get_dataset
from repro.harness.runner import SYSTEMS, create_engine, run_system, shared_model
from repro.model.zoo import QWEN3_0_6B, QWEN3_8B


@pytest.fixture(scope="module")
def queries():
    return get_dataset("wikipedia").queries(2, 20)


class TestCreateEngine:
    def test_all_five_systems_buildable(self):
        from repro.device.platforms import get_profile

        for system in SYSTEMS:
            device = get_profile("nvidia_5070").create()
            engine = create_engine(system, shared_model(QWEN3_0_6B), device)
            assert engine.name == system

    def test_unknown_system_rejected(self):
        from repro.device.platforms import get_profile

        device = get_profile("nvidia_5070").create()
        with pytest.raises(KeyError):
            create_engine("vllm", shared_model(QWEN3_0_6B), device)

    def test_threshold_wired_into_prism(self):
        from repro.device.platforms import get_profile

        device = get_profile("nvidia_5070").create()
        engine = create_engine(
            "prism", shared_model(QWEN3_0_6B), device, threshold=0.42
        )
        assert engine.config.dispersion_threshold == 0.42


class TestRunSystem:
    def test_basic_stats_populated(self, queries):
        stats = run_system("prism", QWEN3_0_6B, "nvidia_5070", queries, 10)
        assert not stats.oom
        assert len(stats.latencies) == 2
        assert len(stats.precisions) == 2
        assert stats.peak_mib > 0
        assert 0.0 <= stats.mean_precision <= 1.0

    def test_empty_queries_rejected(self):
        with pytest.raises(ValueError):
            run_system("prism", QWEN3_0_6B, "nvidia_5070", [], 10)

    def test_oom_reported_not_raised(self, queries):
        """Vanilla HF with Qwen3-8B cannot fit an 8 GiB edge device —
        Table 3 reports this as OOM."""
        stats = run_system("hf", QWEN3_8B, "nvidia_5070", queries, 10)
        assert stats.oom
        assert stats.latencies == []

    def test_8b_runs_under_prism(self, queries):
        """PRISM makes the 8 B model feasible on the same device."""
        stats = run_system("prism", QWEN3_8B, "nvidia_5070", queries, 10)
        assert not stats.oom

    def test_8b_runs_on_a800(self, queries):
        stats = run_system("hf", QWEN3_8B, "nvidia_a800", queries, 10)
        assert not stats.oom

    def test_pruned_fraction_positive_for_prism(self, queries):
        stats = run_system("prism", QWEN3_0_6B, "nvidia_5070", queries, 10)
        assert 0.0 < stats.pruned_fraction < 1.0

    def test_pruned_fraction_zero_for_hf(self, queries):
        stats = run_system("hf", QWEN3_0_6B, "nvidia_5070", queries, 10)
        assert stats.pruned_fraction == 0.0

    def test_keep_results(self, queries):
        stats = run_system(
            "prism", QWEN3_0_6B, "nvidia_5070", queries, 10, keep_results=True
        )
        assert len(stats.results) == 2

    def test_keep_timeline_rebases_to_request_start(self, queries):
        stats = run_system(
            "prism", QWEN3_0_6B, "nvidia_5070", queries, 10, keep_timeline=True
        )
        assert stats.timeline
        assert stats.timeline[0].time >= 0.0

    def test_prism_config_override(self, queries):
        config = PrismConfig(pruning_enabled=False)
        stats = run_system(
            "prism", QWEN3_0_6B, "nvidia_5070", queries, 10, prism_config=config
        )
        assert stats.pruned_fraction == 0.0

    def test_deterministic(self, queries):
        a = run_system("prism", QWEN3_0_6B, "nvidia_5070", queries, 10)
        b = run_system("prism", QWEN3_0_6B, "nvidia_5070", queries, 10)
        assert a.latencies == b.latencies
        assert a.precisions == b.precisions
        assert a.peak_mib == b.peak_mib


class TestCrossSystemShapes:
    """The paper's headline microbenchmark orderings (Figures 8/9)."""

    def test_prism_fastest(self, queries):
        latencies = {
            system: run_system(system, QWEN3_0_6B, "nvidia_5070", queries, 10).mean_latency
            for system in ("hf", "hf_offload", "prism")
        }
        assert latencies["prism"] < latencies["hf"] < latencies["hf_offload"]

    def test_prism_smallest(self, queries):
        peaks = {
            system: run_system(system, QWEN3_0_6B, "nvidia_5070", queries, 10).peak_mib
            for system in ("hf", "hf_offload", "hf_quant", "prism")
        }
        assert peaks["prism"] < peaks["hf_offload"]
        assert peaks["prism"] < peaks["hf_quant"] < peaks["hf"]

    def test_precision_preserved(self, queries):
        hf = run_system("hf", QWEN3_0_6B, "nvidia_5070", queries, 10)
        prism = run_system("prism", QWEN3_0_6B, "nvidia_5070", queries, 10)
        assert abs(prism.mean_precision - hf.mean_precision) < 0.05

    def test_apple_slower_than_nvidia(self, queries):
        nvidia = run_system("prism", QWEN3_0_6B, "nvidia_5070", queries, 10)
        apple = run_system("prism", QWEN3_0_6B, "apple_m2", queries, 10)
        assert apple.mean_latency > nvidia.mean_latency
