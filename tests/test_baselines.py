"""Unit tests for the HF-family baseline engines and W4A16 quantization."""

import numpy as np
import pytest

from repro.baselines import (
    HFEngine,
    HFOffloadEngine,
    HFOffloadQuantEngine,
    HFQuantEngine,
    QuantizedWeights,
    prism_quant_engine,
)
from repro.core.config import PrismConfig
from repro.data.datasets import get_dataset
from repro.data.workloads import build_batch
from repro.device.platforms import get_profile
from repro.harness.runner import shared_model, shared_tokenizer
from repro.model import costs
from repro.model.zoo import QWEN3_0_6B


def make_batch(num_candidates=20):
    query = get_dataset("wikipedia").queries(1, num_candidates)[0]
    return build_batch(query, shared_tokenizer(QWEN3_0_6B), QWEN3_0_6B.max_seq_len)


def prepared(engine_cls, **kwargs):
    device = get_profile("nvidia_5070").create()
    engine = engine_cls(shared_model(QWEN3_0_6B), device, numerics=False, **kwargs)
    engine.prepare()
    return engine


class TestHFEngine:
    def test_full_resident_weights(self):
        engine = prepared(HFEngine)
        weights = engine.device.memory.in_use_by_category("weights")
        embedding = engine.device.memory.in_use_by_category("embedding")
        assert weights >= costs.all_layer_weight_bytes(QWEN3_0_6B)
        assert embedding == costs.embedding_table_bytes(QWEN3_0_6B)

    def test_every_candidate_pays_every_layer(self):
        engine = prepared(HFEngine)
        result = engine.rerank(make_batch(20), 10)
        assert result.candidate_layers == 20 * QWEN3_0_6B.num_layers

    def test_returns_reference_topk(self):
        engine = prepared(HFEngine)
        batch = make_batch(20)
        result = engine.rerank(batch, 10)
        reference = np.argsort(-engine.model.full_forward(batch, numerics=False))[:10]
        assert set(result.top_indices.tolist()) == set(reference.tolist())

    def test_minibatching_transparent_to_scores(self):
        """Mini-batch size must not change the ranking (only memory)."""
        batch = make_batch(20)
        small = prepared(HFEngine, batch_size=4).rerank(batch, 10)
        large = prepared(HFEngine, batch_size=20).rerank(batch, 10)
        assert np.array_equal(small.top_indices, large.top_indices)

    def test_no_io_during_inference(self):
        engine = prepared(HFEngine)
        stall_after_prepare = engine.executor.io_stall_seconds
        result = engine.rerank(make_batch(), 10)
        assert result.io_stall_seconds == 0.0
        assert engine.executor.io_stall_seconds == stall_after_prepare

    def test_invalid_batch_size_rejected(self):
        device = get_profile("nvidia_5070").create()
        with pytest.raises(ValueError):
            HFEngine(shared_model(QWEN3_0_6B), device, batch_size=0)


class TestHFOffloadEngine:
    def test_layers_not_resident_after_prepare(self):
        engine = prepared(HFOffloadEngine)
        weights = engine.device.memory.in_use_by_category("weights")
        assert weights < costs.layer_weight_bytes(QWEN3_0_6B) * 2

    def test_slower_than_in_memory_hf(self):
        """Synchronous per-layer loads on the critical path (§6.1)."""
        batch = make_batch(20)
        hf = prepared(HFEngine).rerank(batch, 10)
        offload = prepared(HFOffloadEngine).rerank(batch, 10)
        assert offload.latency_seconds > hf.latency_seconds

    def test_reloads_per_minibatch(self):
        """The layer sequence is re-read for every mini-batch — the
        cost PRISM's monolithic batch eliminates."""
        engine = prepared(HFOffloadEngine, batch_size=10)
        engine.rerank(make_batch(20), 10)  # 2 mini-batches
        reads = [
            r
            for r in engine.device.ssd.request_log
            if r.kind == "read" and "layer" in r.tag
        ]
        assert len(reads) == 2 * QWEN3_0_6B.num_layers

    def test_same_ranking_as_hf(self):
        batch = make_batch(20)
        hf = prepared(HFEngine).rerank(batch, 10)
        offload = prepared(HFOffloadEngine).rerank(batch, 10)
        assert np.array_equal(hf.top_indices, offload.top_indices)

    def test_io_stall_accounted(self):
        engine = prepared(HFOffloadEngine)
        result = engine.rerank(make_batch(), 10)
        assert result.io_stall_seconds > 0.0

    def test_deserialize_efficiency_validated(self):
        device = get_profile("nvidia_5070").create()
        with pytest.raises(ValueError):
            HFOffloadEngine(shared_model(QWEN3_0_6B), device, deserialize_efficiency=0.0)
        with pytest.raises(ValueError):
            HFOffloadEngine(shared_model(QWEN3_0_6B), device, deserialize_efficiency=1.2)


class TestQuantization:
    def test_quant_weights_smaller(self):
        hf = prepared(HFEngine)
        quant = prepared(HFQuantEngine)
        assert (
            quant.device.memory.in_use_by_category("weights")
            < 0.4 * hf.device.memory.in_use_by_category("weights")
        )

    def test_quant_slightly_slower_than_hf(self):
        """W4A16 prefill pays dequantization overhead on edge GPUs
        (§2.3) — HF Quant trades latency for memory, Figure 8/9."""
        batch = make_batch(20)
        hf = prepared(HFEngine).rerank(batch, 10)
        quant = prepared(HFQuantEngine).rerank(batch, 10)
        assert quant.latency_seconds > hf.latency_seconds
        assert quant.latency_seconds < 1.5 * hf.latency_seconds

    def test_offload_quant_variant(self):
        engine = prepared(HFOffloadQuantEngine)
        assert engine.name == "hf_offload_quant"
        result = engine.rerank(make_batch(), 5)
        assert result.k == 5

    def test_prism_quant_requires_quant_config(self):
        device = get_profile("nvidia_5070").create()
        with pytest.raises(ValueError):
            prism_quant_engine(
                shared_model(QWEN3_0_6B), device, PrismConfig(numerics=False)
            )

    def test_prism_quant_builds_and_runs(self):
        device = get_profile("nvidia_5070").create()
        engine = prism_quant_engine(
            shared_model(QWEN3_0_6B), device, PrismConfig.quant(numerics=False)
        )
        engine.prepare()
        result = engine.rerank(make_batch(), 10)
        assert engine.name == "prism_quant"
        assert result.k == 10


class TestQuantizedNumerics:
    def test_roundtrip_error_bounded(self):
        """4-bit per-channel quantization keeps max error within one
        quantization step — why Table 3's quant precision deltas are tiny."""
        rng = np.random.default_rng(0)
        weight = rng.standard_normal((64, 32)) * 0.1
        step = (weight.max(axis=0) - weight.min(axis=0)).max() / 15
        assert QuantizedWeights.roundtrip_error(weight) <= step / 2 + 1e-12

    def test_codes_in_4bit_range(self):
        rng = np.random.default_rng(1)
        tensor = QuantizedWeights.quantize(rng.standard_normal((16, 8)))
        assert tensor.qweight.min() >= 0
        assert tensor.qweight.max() <= 15

    def test_dequantize_shape(self):
        rng = np.random.default_rng(2)
        weight = rng.standard_normal((16, 8))
        assert QuantizedWeights.quantize(weight).dequantize().shape == weight.shape

    def test_constant_channel_survives(self):
        weight = np.full((8, 4), 0.5)
        deq = QuantizedWeights.quantize(weight).dequantize()
        assert np.allclose(deq, 0.5, atol=1e-9)

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            QuantizedWeights.quantize(np.zeros(8))
