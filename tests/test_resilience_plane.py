"""Tests for the resilience plane (DESIGN.md §9).

Deterministic fault injection on the device substrate, fault
containment in the scheduler, health-checked failover and hedging in
the fleet, and the queue-depth autoscaler — plus the load-bearing
equivalence: a fault-free plan changes nothing, byte for byte.
"""

import numpy as np
import pytest

from repro.core.api import (
    REQUEST_FAILED,
    DeviceServer,
    EngineServer,
    FleetServer,
    SelectionRequest,
    serve_all,
)
from repro.core.config import PrismConfig
from repro.core.engine import PrismEngine
from repro.core.fleet import FleetConfig, FleetService
from repro.core.resilience import (
    FAULT_BANDWIDTH_DEGRADATION,
    FAULT_REPLICA_CRASH,
    FAULT_REPLICA_STALL,
    FAULT_SSD_READ_ERROR,
    AutoscalerConfig,
    DeviceFault,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    ResilienceConfig,
)
from repro.core.scheduler import DeviceScheduler, SchedulerConfig
from repro.core.service import SemanticSelectionService
from repro.data.datasets import get_dataset
from repro.data.workloads import build_batch
from repro.device.platforms import get_profile
from repro.harness.runner import shared_model, shared_tokenizer
from repro.model.zoo import QWEN3_0_6B


@pytest.fixture(scope="module")
def batches():
    tokenizer = shared_tokenizer(QWEN3_0_6B)
    queries = get_dataset("wikipedia").queries(8, 12)
    return [build_batch(q, tokenizer, QWEN3_0_6B.max_seq_len) for q in queries]


def make_engine(config=None, faults=None):
    device = get_profile("nvidia_5070").create()
    if faults is not None:
        device.install_faults(faults)
    engine = PrismEngine(
        shared_model(QWEN3_0_6B), device, config or PrismConfig(numerics=False)
    )
    engine.prepare()
    return engine


def make_fleet(num_replicas=2, profile="nvidia_5070", **kwargs):
    fleet_kwargs = {
        key: kwargs.pop(key)
        for key in ("fault_plan", "resilience", "autoscaler", "sample_rate")
        if key in kwargs
    }
    return FleetService.homogeneous(
        shared_model(QWEN3_0_6B),
        get_profile(profile),
        num_replicas,
        fleet_config=FleetConfig(**kwargs),
        config=PrismConfig(numerics=False),
        **fleet_kwargs,
    )


# ----------------------------------------------------------------------
# fault primitives
# ----------------------------------------------------------------------
class TestFaultPrimitives:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent("gamma_ray", at=0.0)

    def test_negative_instant_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(FAULT_REPLICA_CRASH, at=-1.0)

    def test_degradation_needs_window_and_fraction(self):
        with pytest.raises(ValueError):
            FaultEvent(FAULT_BANDWIDTH_DEGRADATION, at=0.0, fraction=0.5)
        with pytest.raises(ValueError):
            FaultEvent(FAULT_BANDWIDTH_DEGRADATION, at=0.0, duration=1.0, fraction=1.5)

    def test_stall_needs_duration(self):
        with pytest.raises(ValueError):
            FaultEvent(FAULT_REPLICA_STALL, at=0.0)

    def test_plan_filters_by_replica(self):
        plan = FaultPlan(
            [
                FaultEvent(FAULT_REPLICA_CRASH, at=1.0, replica=0),
                FaultEvent(FAULT_REPLICA_CRASH, at=2.0, replica=1),
                FaultEvent(FAULT_REPLICA_STALL, at=3.0, duration=0.1),  # all
            ]
        )
        assert len(plan.for_replica(0)) == 2
        assert len(plan.for_replica(1)) == 2
        assert len(plan.for_replica(7)) == 1
        assert not plan.empty and FaultPlan().empty

    def test_injector_point_events_are_one_shot(self):
        injector = FaultInjector([FaultEvent(FAULT_REPLICA_CRASH, at=1.0)])
        assert injector.pop_crash(0.5) is None
        assert injector.pop_crash(1.5) is not None
        assert injector.pop_crash(2.0) is None  # consumed
        assert injector.pending_events == 0
        assert len(injector.fired) == 1

    def test_injector_rebases_onto_origin(self):
        injector = FaultInjector([FaultEvent(FAULT_REPLICA_CRASH, at=1.0)], origin=10.0)
        assert injector.pop_crash(1.5) is None
        assert injector.pop_crash(11.0) is not None

    def test_degradation_windows_compose(self):
        injector = FaultInjector(
            [
                FaultEvent(FAULT_BANDWIDTH_DEGRADATION, at=0.0, duration=2.0, fraction=0.5),
                FaultEvent(FAULT_BANDWIDTH_DEGRADATION, at=1.0, duration=2.0, fraction=0.5),
            ]
        )
        assert injector.bandwidth_fraction(0.5) == 0.5
        assert injector.bandwidth_fraction(1.5) == 0.25
        assert injector.bandwidth_fraction(2.5) == 0.5
        assert injector.bandwidth_fraction(3.5) == 1.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ResilienceConfig(max_retries=-1)
        with pytest.raises(ValueError):
            ResilienceConfig(failure_threshold=0)
        with pytest.raises(ValueError):
            ResilienceConfig(latency_degradation_factor=0.5)
        with pytest.raises(ValueError):
            AutoscalerConfig(min_replicas=0)
        with pytest.raises(ValueError):
            AutoscalerConfig(min_replicas=4, max_replicas=2)
        with pytest.raises(ValueError):
            AutoscalerConfig(scale_up_queue_depth=0)


# ----------------------------------------------------------------------
# device-level injection
# ----------------------------------------------------------------------
class TestDeviceInjection:
    def test_read_error_surfaces_as_typed_fault(self):
        device = get_profile("nvidia_5070").create()
        device.install_faults([FaultEvent(FAULT_SSD_READ_ERROR, at=0.0)])
        with pytest.raises(DeviceFault) as excinfo:
            device.ssd.read_sync("load/x", 1 << 20)
        assert excinfo.value.kind == FAULT_SSD_READ_ERROR
        # One-shot: the next read succeeds.
        device.ssd.read_sync("load/y", 1 << 20)

    def test_degraded_window_stretches_reads(self):
        nominal = get_profile("nvidia_5070").create()
        t_nominal = nominal.ssd.read_sync("load/x", 64 << 20)
        degraded = get_profile("nvidia_5070").create()
        degraded.install_faults(
            [FaultEvent(FAULT_BANDWIDTH_DEGRADATION, at=0.0, duration=60.0, fraction=0.25)]
        )
        t_degraded = degraded.ssd.read_sync("load/x", 64 << 20)
        # Transfer component scales by 1/fraction; command latency stands.
        latency = nominal.profile.ssd.latency
        assert t_degraded == pytest.approx(latency + (t_nominal - latency) / 0.25)

    def test_empty_plan_changes_nothing(self):
        plain = get_profile("nvidia_5070").create()
        planned = get_profile("nvidia_5070").create()
        planned.install_faults(FaultPlan())
        assert plain.ssd.read_sync("load/x", 32 << 20) == planned.ssd.read_sync(
            "load/x", 32 << 20
        )


# ----------------------------------------------------------------------
# engine / scheduler containment
# ----------------------------------------------------------------------
class TestSchedulerContainment:
    def test_crash_closes_every_inflight_task(self, batches):
        """A crash fails all in-flight and waiting requests, and every
        weight-plane refcount is released — exactly like a cancel."""
        engine = make_engine(
            config=PrismConfig(numerics=False, shared_weight_plane=True),
            faults=FaultPlan([FaultEvent(FAULT_REPLICA_CRASH, at=0.05)]),
        )
        scheduler = DeviceScheduler(
            engine, SchedulerConfig(policy="fusion", max_concurrency=3)
        )
        for batch in batches[:3]:
            scheduler.submit_request(batch, 5)
        outcomes = scheduler.drain()
        assert outcomes == []
        assert len(scheduler.dropped) == 3
        assert all(d.reason == "failed" for d in scheduler.dropped)
        assert all(d.detail == FAULT_REPLICA_CRASH for d in scheduler.dropped)
        plane = engine.weight_plane
        assert plane is not None
        assert plane.open_passes == 0
        assert plane.resident_layers == set()

    def test_read_error_fails_one_request_others_complete(self, batches):
        engine = make_engine(
            faults=FaultPlan([FaultEvent(FAULT_SSD_READ_ERROR, at=0.05)])
        )
        scheduler = DeviceScheduler(
            engine, SchedulerConfig(policy="round_robin", max_concurrency=2)
        )
        for batch in batches[:3]:
            scheduler.submit_request(batch, 5)
        outcomes = scheduler.drain()
        assert len(outcomes) == 2
        (drop,) = scheduler.dropped
        assert drop.reason == "failed"
        assert drop.detail == FAULT_SSD_READ_ERROR

    def test_stall_inflates_latency_only(self, batches):
        plain_engine = make_engine()
        result = plain_engine.start(batches[0], 5).run()
        stalled_engine = make_engine(
            faults=FaultPlan(
                [FaultEvent(FAULT_REPLICA_STALL, at=0.0, duration=0.5)]
            )
        )
        stalled = stalled_engine.start(batches[0], 5).run()
        assert np.array_equal(stalled.top_indices, result.top_indices)
        assert stalled_engine.device.clock.now == pytest.approx(
            plain_engine.device.clock.now + 0.5
        )

    def test_engine_server_reports_failed_status(self, batches):
        engine = make_engine(
            faults=FaultPlan([FaultEvent(FAULT_SSD_READ_ERROR, at=0.05)])
        )
        responses = serve_all(
            EngineServer(engine),
            [
                SelectionRequest(batch=batches[0], k=5, request_id="dead"),
                SelectionRequest(batch=batches[1], k=5, request_id="alive"),
            ],
        )
        by_id = {r.request_id: r for r in responses}
        assert by_id["dead"].status == REQUEST_FAILED
        assert by_id["alive"].ok

    def test_device_server_reports_failed_status(self, batches):
        service = SemanticSelectionService(
            shared_model(QWEN3_0_6B),
            get_profile("nvidia_5070"),
            config=PrismConfig(numerics=False),
            max_concurrency=2,
        )
        service.device.install_faults(
            [FaultEvent(FAULT_REPLICA_CRASH, at=0.05)]
        )
        responses = serve_all(
            DeviceServer(service),
            [SelectionRequest(batch=b, k=5, request_id=i) for i, b in enumerate(batches[:3])],
        )
        assert all(r.status == REQUEST_FAILED for r in responses)


# ----------------------------------------------------------------------
# fleet failover
# ----------------------------------------------------------------------
class TestFleetFailover:
    CRASH = FaultPlan([FaultEvent(FAULT_REPLICA_CRASH, at=0.2, replica=0)])

    def test_crash_failover_completes_everything(self, batches):
        fleet = make_fleet(
            2,
            max_batch=2,
            max_wait_ms=0.0,
            fault_plan=self.CRASH,
            resilience=ResilienceConfig(max_retries=2, cooldown_s=1e6),
        )
        ids = [fleet.submit_request(batch, 5) for batch in batches]
        outcomes = fleet.drain()
        stats = fleet.stats()
        assert sorted(o.request_id for o in outcomes) == ids  # zero lost
        assert stats.failed_requests == 0
        assert stats.failovers > 0
        failed_over = [o for o in outcomes if o.attempts > 1]
        assert failed_over
        for outcome in failed_over:
            assert outcome.failed_over_from == (0,)
            assert outcome.replica != 0  # requeued onto a healthy replica

    def test_retry_never_starts_before_its_fault(self, batches):
        """Failover must not rewind time: a retry's service cannot
        begin before the fault that spawned it, even when the backup
        replica has been idle all along."""
        crash_at = 0.05
        fleet = make_fleet(
            2,
            max_batch=1,
            max_wait_ms=0.0,
            routing="round_robin",
            fault_plan=FaultPlan(
                [FaultEvent(FAULT_REPLICA_CRASH, at=crash_at, replica=0)]
            ),
            resilience=ResilienceConfig(cooldown_s=1e6),
        )
        fleet.submit_request(batches[0], 5)
        (outcome,) = fleet.drain()
        assert outcome.attempts == 2
        assert outcome.replica == 1
        assert outcome.start >= crash_at
        assert outcome.service_start >= crash_at

    def test_concurrent_dispatch_failover(self, batches):
        fleet = make_fleet(
            2,
            max_batch=4,
            max_wait_ms=0.0,
            intra_concurrency=4,
            fault_plan=self.CRASH,
            resilience=ResilienceConfig(cooldown_s=1e6),
        )
        ids = [fleet.submit_request(batch, 5) for batch in batches]
        outcomes = fleet.drain()
        assert sorted(o.request_id for o in outcomes) == ids
        assert any(o.attempts > 1 for o in outcomes)

    def test_retries_bounded(self, batches):
        """With zero retries, the crash's victims drop as failed —
        bounded failover, never a loop."""
        fleet = make_fleet(
            2,
            max_batch=2,
            max_wait_ms=0.0,
            fault_plan=self.CRASH,
            resilience=ResilienceConfig(max_retries=0, cooldown_s=1e6),
        )
        ids = [fleet.submit_request(batch, 5) for batch in batches]
        outcomes = fleet.drain()
        stats = fleet.stats()
        failed = [d for d in fleet.dropped_requests if d.reason == "failed"]
        assert failed and stats.failed_requests == len(failed)
        assert len(outcomes) + len(failed) == len(ids)  # accounted, not lost
        # The drop record keeps the failover provenance: which replica
        # failed the final attempt, and how many attempts were burned.
        for drop in failed:
            assert drop.failed_over_from == (0,)
            assert drop.attempts == 1  # max_retries=0: one attempt allowed

    def test_crashed_replica_excluded_until_cooldown(self, batches):
        fleet = make_fleet(
            2,
            max_batch=2,
            max_wait_ms=0.0,
            fault_plan=self.CRASH,
            resilience=ResilienceConfig(cooldown_s=5.0),
        )
        for batch in batches:
            fleet.submit_request(batch, 5)
        outcomes = fleet.drain()
        dead = fleet.replicas[0]
        assert not dead.health.healthy(dead.health.unhealthy_until - 1e-9)
        # Everything dispatched after the crash ran on the survivor.
        for outcome in outcomes:
            if outcome.start > 0.2:
                assert outcome.replica == 1
        # After the cooldown the replica serves again.
        late = fleet.submit_request(batches[0], 5, at=fleet.clock.now + 10.0)
        (outcome,) = [o for o in fleet.drain() if o.request_id == late]
        assert outcome.replica in (0, 1)
        assert fleet.replicas[0].health.healthy(fleet.clock.now)

    def test_failover_provenance_reaches_selection_response(self, batches):
        fleet = make_fleet(
            2,
            max_batch=2,
            max_wait_ms=0.0,
            fault_plan=self.CRASH,
            resilience=ResilienceConfig(cooldown_s=1e6),
        )
        responses = serve_all(
            FleetServer(fleet),
            [
                SelectionRequest(batch=batch, k=5, request_id=f"q{i}")
                for i, batch in enumerate(batches)
            ],
        )
        assert all(r.ok for r in responses)
        retried = [r for r in responses if r.attempts > 1]
        assert retried
        assert all(r.failed_over_from == (0,) for r in retried)

    def test_failed_response_keeps_failover_provenance(self, batches):
        """A retries-exhausted request's SelectionResponse still shows
        the failover journey — attempts and the failing replicas."""
        fleet = make_fleet(
            1,
            max_batch=2,
            max_wait_ms=0.0,
            fault_plan=FaultPlan(
                [FaultEvent(FAULT_REPLICA_CRASH, at=0.05, replica=0)]
            ),
            resilience=ResilienceConfig(max_retries=0, cooldown_s=0.1),
        )
        responses = serve_all(
            FleetServer(fleet),
            [
                SelectionRequest(batch=batch, k=5, request_id=f"q{i}")
                for i, batch in enumerate(batches[:3])
            ],
        )
        failed = [r for r in responses if r.status == REQUEST_FAILED]
        assert failed
        for response in failed:
            assert response.failed_over_from == (0,)

    def test_spawned_replica_ignores_past_fault_events(self):
        """A replacement spawned after a fault instant must not re-fire
        the event that predates its own existence; events still ahead
        (and the live remainder of degradation windows) apply."""
        from repro.device.platforms import get_profile as profile_of

        fleet = make_fleet(
            1,
            # replica=None targets every replica — including, naively,
            # ones spawned long after the instant has passed.
            fault_plan=FaultPlan(
                [
                    FaultEvent(FAULT_REPLICA_CRASH, at=0.1),
                    FaultEvent(FAULT_REPLICA_STALL, at=10.0, duration=0.5),
                    FaultEvent(
                        FAULT_BANDWIDTH_DEGRADATION,
                        at=0.0,
                        duration=20.0,
                        fraction=0.5,
                    ),
                ]
            ),
        )
        late = fleet._spawn_replica(profile_of("nvidia_5070"), spawned_at=5.0)
        injector = late.service.device.faults
        assert injector is not None
        # The crash at 0.1 predates the spawn: never fires, however
        # late the replica consults the injector.
        assert injector.pop_crash(late.origin + 1e9) is None
        # The stall at 10.0 is still ahead: it fires.
        assert injector.pop_stall(late.origin + 1e9) is not None
        # The degradation window still overlaps the future: it applies.
        assert injector.bandwidth_fraction(late.origin + 15.0) == 0.5

    def test_spawned_at_construction_keeps_all_events(self):
        fleet = make_fleet(
            2,
            fault_plan=FaultPlan([FaultEvent(FAULT_REPLICA_CRASH, at=0.1)]),
        )
        for replica in fleet.replicas:
            injector = replica.service.device.faults
            assert injector is not None and injector.pending_events == 1

    def test_slow_replica_probe_marks_unhealthy(self, batches):
        """A stalled replica never fails a request — the EWMA latency
        probe has to catch it."""
        plan = FaultPlan(
            [FaultEvent(FAULT_REPLICA_STALL, at=0.0, replica=0, duration=2.0)]
        )
        fleet = make_fleet(
            2,
            max_batch=1,
            max_wait_ms=0.0,
            routing="round_robin",
            fault_plan=plan,
            resilience=ResilienceConfig(
                latency_degradation_factor=2.0, cooldown_s=1e6
            ),
        )
        for batch in batches[:4]:
            fleet.submit_request(batch, 5)
        fleet.drain()
        assert fleet.replicas[0].health.unhealthy_marks >= 1
        assert fleet.replicas[1].health.unhealthy_marks == 0


# ----------------------------------------------------------------------
# hedging
# ----------------------------------------------------------------------
class TestHedging:
    def test_hedge_wins_against_stalled_primary(self, batches):
        plan = FaultPlan(
            [FaultEvent(FAULT_REPLICA_STALL, at=0.0, replica=0, duration=1.0)]
        )
        fleet = make_fleet(
            2, max_batch=1, max_wait_ms=0.0, routing="round_robin", fault_plan=plan
        )
        request_id = fleet.submit_request(batches[0], 5, hedge_after_ms=300.0)
        (outcome,) = fleet.drain()
        stats = fleet.stats()
        assert outcome.request_id == request_id
        assert outcome.hedged
        assert outcome.replica == 1  # the duplicate won
        assert stats.hedges_launched == 1 and stats.hedges_won == 1

    def test_hedge_loser_is_cancelled_midpass(self, batches):
        """Identical replicas, hedge fired deep into the primary's
        ~300 ms pass: the duplicate cannot catch up, loses the race,
        and is cancelled mid-pass through the ordinary cancel path."""
        fleet = make_fleet(2, max_batch=1, max_wait_ms=0.0)
        fleet.submit_request(batches[0], 5, hedge_after_ms=200.0)
        (outcome,) = fleet.drain()
        stats = fleet.stats()
        assert outcome.replica == 0  # the primary won
        assert outcome.hedged
        assert stats.hedges_launched == 1 and stats.hedges_won == 0
        # The loser's pass was cancelled on the backup replica.
        assert fleet.replicas[1].service.stats.requests_dropped == 1

    def test_fast_primary_never_hedges(self, batches):
        fleet = make_fleet(2, max_batch=1, max_wait_ms=0.0)
        fleet.submit_request(batches[0], 5, hedge_after_ms=60_000.0)
        (outcome,) = fleet.drain()
        assert not outcome.hedged
        assert fleet.stats().hedges_launched == 0

    def test_bad_hedge_rejected(self, batches):
        fleet = make_fleet(1)
        with pytest.raises(ValueError):
            fleet.submit_request(batches[0], 5, hedge_after_ms=0.0)
        with pytest.raises(ValueError):
            SelectionRequest(batch=batches[0], k=5, hedge_after_ms=-1.0)


# ----------------------------------------------------------------------
# autoscaler
# ----------------------------------------------------------------------
class TestAutoscaler:
    AUTOSCALER = AutoscalerConfig(
        min_replicas=1,
        max_replicas=4,
        scale_up_queue_depth=2,
        scale_down_idle_s=1.0,
        warmup_s=0.1,
        action_cooldown_s=0.0,
    )

    def test_scale_up_on_queue_depth(self, batches):
        fleet = make_fleet(
            1, max_batch=2, max_wait_ms=0.0, autoscaler=self.AUTOSCALER
        )
        ids = [fleet.submit_request(batch, 5, at=0.0) for batch in batches]
        outcomes = fleet.drain()
        stats = fleet.stats()
        assert sorted(o.request_id for o in outcomes) == ids
        ups = [e for e in stats.scaling_events if e.action == "scale_up"]
        assert ups and ups[0].reason == "queue_depth"
        assert stats.peak_capacity > 1
        assert stats.capacity_samples[0] == (0.0, 1)

    def test_warmup_charged_before_first_dispatch(self, batches):
        fleet = make_fleet(
            1, max_batch=2, max_wait_ms=0.0, autoscaler=self.AUTOSCALER
        )
        for batch in batches:
            fleet.submit_request(batch, 5, at=0.0)
        outcomes = fleet.drain()
        spawn_at = {
            e.replica: e.at
            for e in fleet.stats().scaling_events
            if e.action == "scale_up"
        }
        for outcome in outcomes:
            if outcome.replica in spawn_at:
                assert outcome.start >= spawn_at[outcome.replica] + 0.1 - 1e-9

    def test_scale_down_retires_idle_replica(self, batches):
        fleet = make_fleet(
            1, max_batch=2, max_wait_ms=0.0, autoscaler=self.AUTOSCALER
        )
        for batch in batches:
            fleet.submit_request(batch, 5, at=0.0)
        fleet.drain()
        assert len(fleet.active_replicas) > 1
        # A trickle arriving long after the burst: the idle extra
        # replicas are retired on the way, never below min_replicas.
        fleet.submit_request(batches[0], 5, at=fleet.clock.now + 30.0)
        fleet.drain()
        stats = fleet.stats()
        downs = [e for e in stats.scaling_events if e.action == "scale_down"]
        assert downs and downs[0].reason == "idle"
        assert len(fleet.active_replicas) >= self.AUTOSCALER.min_replicas
        retired = {e.replica for e in downs}
        assert all(fleet.replicas[i].retired for i in retired)

    def test_max_replicas_respected(self, batches):
        fleet = make_fleet(
            1,
            max_batch=1,
            max_wait_ms=0.0,
            autoscaler=AutoscalerConfig(
                max_replicas=2, scale_up_queue_depth=1, warmup_s=0.0,
                action_cooldown_s=0.0,
            ),
        )
        for batch in batches + batches:
            fleet.submit_request(batch, 5, at=0.0)
        fleet.drain()
        assert len(fleet.active_replicas) <= 2


# ----------------------------------------------------------------------
# the load-bearing equivalence
# ----------------------------------------------------------------------
class TestFaultFreeEquivalence:
    def test_fault_free_plan_is_byte_identical(self, batches):
        """The acceptance bar: under a fault-free plan (and default
        resilience config) every outcome — selection, replica, timing —
        matches a fleet constructed without the resilience plane."""
        plain = make_fleet(2, max_batch=2, max_wait_ms=5.0)
        planned = make_fleet(
            2,
            max_batch=2,
            max_wait_ms=5.0,
            fault_plan=FaultPlan(),
            resilience=ResilienceConfig(),
        )
        for batch in batches:
            plain.submit_request(batch, 5)
            planned.submit_request(batch, 5)
        signature = lambda outcomes: [  # noqa: E731
            (
                o.request_id,
                o.replica,
                o.start,
                o.finish,
                o.attempts,
                o.result.top_indices.tolist(),
                o.result.top_scores.tolist(),
            )
            for o in outcomes
        ]
        assert signature(plain.drain()) == signature(planned.drain())
        assert plain.clock.now == planned.clock.now

    def test_injected_run_preserves_selections(self, batches):
        """Faults move where and when requests run — never what they
        compute: selections match the fault-free fleet's exactly."""
        plain = make_fleet(2, max_batch=2, max_wait_ms=0.0)
        faulted = make_fleet(
            2,
            max_batch=2,
            max_wait_ms=0.0,
            fault_plan=FaultPlan(
                [FaultEvent(FAULT_REPLICA_CRASH, at=0.2, replica=0)]
            ),
            resilience=ResilienceConfig(cooldown_s=1e6),
        )
        for batch in batches:
            plain.submit_request(batch, 5)
            faulted.submit_request(batch, 5)
        reference = {o.request_id: o for o in plain.drain()}
        for outcome in faulted.drain():
            assert np.array_equal(
                outcome.result.top_indices,
                reference[outcome.request_id].result.top_indices,
            )

    def test_engine_identical_under_empty_plan(self, batches):
        plain = make_engine().start(batches[0], 5).run()
        planned = make_engine(faults=FaultPlan()).start(batches[0], 5).run()
        assert np.array_equal(plain.top_indices, planned.top_indices)
        assert np.array_equal(plain.top_scores, planned.top_scores)
        assert plain.latency_seconds == planned.latency_seconds
        assert plain.io_stall_seconds == planned.io_stall_seconds

    def test_scheduler_trace_identical_under_empty_plan(self, batches):
        traces = []
        for plan in (None, FaultPlan()):
            engine = make_engine(faults=plan)
            scheduler = DeviceScheduler(
                engine, SchedulerConfig(policy="round_robin", max_concurrency=2)
            )
            for batch in batches[:3]:
                scheduler.submit_request(batch, 5)
            scheduler.drain()
            traces.append(scheduler.trace_text())
        assert traces[0] == traces[1]


# ----------------------------------------------------------------------
# duplicate in-flight ids (satellite)
# ----------------------------------------------------------------------
class TestDuplicateRequestIds:
    def test_fleet_rejects_duplicate_inflight_client_id(self, batches):
        fleet = make_fleet(1)
        fleet.submit_request(batches[0], 5, client_id="q0")
        with pytest.raises(ValueError, match="duplicate in-flight request id"):
            fleet.submit_request(batches[1], 5, client_id="q0")
        fleet.drain()
        # Drained: the id is no longer in flight and may be reused.
        fleet.submit_request(batches[1], 5, client_id="q0")
        fleet.drain()

    def test_scheduler_rejects_duplicate_inflight_client_id(self, batches):
        engine = make_engine()
        scheduler = DeviceScheduler(engine)
        scheduler.submit_request(batches[0], 5, client_id=7)
        with pytest.raises(ValueError, match="duplicate in-flight request id"):
            scheduler.submit_request(batches[1], 5, client_id=7)
        scheduler.drain()
        scheduler.submit_request(batches[1], 5, client_id=7)

    def test_distinct_ids_still_fine(self, batches):
        fleet = make_fleet(1)
        fleet.submit_request(batches[0], 5, client_id="a")
        fleet.submit_request(batches[1], 5, client_id="b")
        fleet.submit_request(batches[2], 5)  # anonymous never collides
        assert len(fleet.drain()) == 3
