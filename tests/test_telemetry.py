"""Tests for the live telemetry plane (DESIGN.md §14).

Three contracts: subscriber fan-out never perturbs the simulation
(byte-identity, bounded drops), the registry's Prometheus exposition is
grammatically valid, and live-derived registry values equal post-hoc
aggregation (`FleetStats`, `summarize_events`) exactly.
"""

import re

import numpy as np
import pytest

from repro.core.config import PrismConfig
from repro.core.events import EVENT_KINDS, EventLog
from repro.core.fleet import FleetConfig, FleetService
from repro.core.telemetry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TelemetryCollector,
    dashboard_views,
    estimate_quantile_from_buckets,
    fleet_equivalence_report,
    parse_exposition,
    slo_lookup,
)
from repro.core.tenancy import TenancyConfig, TenantPolicy
from repro.core.trace import run_trace, summarize_events
from repro.data.datasets import get_dataset
from repro.data.workloads import build_batch
from repro.device.platforms import get_profile
from repro.harness.runner import shared_model, shared_tokenizer
from repro.harness.traces import build_scenario
from repro.model.zoo import QWEN3_0_6B

#: Prometheus text-format sample line: name{labels} value.
_LABEL = r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\["n\\])*"'
SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    rf"(\{{{_LABEL}(,{_LABEL})*\}})?"
    r" (\+Inf|-Inf|NaN|-?[0-9.eE+-]+)$"
)
COMMENT_LINE = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$")


@pytest.fixture(scope="module")
def batches():
    tokenizer = shared_tokenizer(QWEN3_0_6B)
    queries = get_dataset("wikipedia").queries(8, 8)
    return [build_batch(q, tokenizer, QWEN3_0_6B.max_seq_len) for q in queries]


def make_fleet(tenancy=None, event_log=None, **fleet_kwargs):
    return FleetService.homogeneous(
        shared_model(QWEN3_0_6B),
        get_profile("nvidia_5070"),
        2,
        fleet_config=FleetConfig(**fleet_kwargs),
        config=PrismConfig(numerics=False),
        tenancy=tenancy,
        event_log=event_log,
    )


class TestSubscription:
    def test_fan_out_delivers_in_order(self):
        log = EventLog()
        sub = log.subscribe()
        for i in range(5):
            log.emit("step", at=float(i), tier="engine", request=i)
        events = sub.poll()
        assert [e.request for e in events] == list(range(5))
        assert sub.delivered == 5 and sub.dropped == 0

    def test_slow_subscriber_drops_with_accounting(self):
        # The §14 guarantee: a subscriber slower than the event rate
        # loses events to a counted drop, never blocks the emitter.
        log = EventLog()
        sub = log.subscribe(capacity=3)
        for i in range(10):
            log.emit("step", at=float(i), tier="engine", request=i)
        assert len(log) == 10  # the log itself never loses events
        assert sub.backlog == 3
        assert sub.delivered == 3
        assert sub.dropped == 7
        # Draining frees capacity for subsequent events.
        assert len(sub.poll()) == 3
        log.emit("step", at=10.0, tier="engine", request=10)
        assert sub.poll()[0].request == 10

    def test_filters_restrict_delivery(self):
        log = EventLog()
        sub = log.subscribe(kinds=("complete",), tiers=("fleet",))
        log.emit("admit", at=0.0, tier="fleet", request=1)
        log.emit("complete", at=0.1, tier="device", request=1)
        log.emit("complete", at=0.2, tier="fleet", request=1)
        events = sub.poll()
        assert [(e.kind, e.tier) for e in events] == [("complete", "fleet")]
        # Filtered-out events count as neither delivered nor dropped.
        assert sub.delivered == 1 and sub.dropped == 0

    def test_unknown_kind_filter_rejected(self):
        log = EventLog()
        with pytest.raises(ValueError):
            log.subscribe(kinds=("nonsense",))

    def test_close_detaches(self):
        log = EventLog()
        sub = log.subscribe()
        assert log.subscriber_count == 1
        sub.close()
        assert log.subscriber_count == 0
        log.emit("step", at=0.0, tier="engine", request=1)
        assert sub.poll() == []

    def test_subscribed_run_is_byte_identical(self):
        # Attaching subscribers (including one too small to keep up)
        # must not change a single emitted byte or selection.
        spec, requests = build_scenario("deadline", quick=True)
        baseline = run_trace(spec, requests)
        log = EventLog()
        log.subscribe(capacity=65536)
        log.subscribe(capacity=2)  # deliberately lossy
        log.subscribe(kinds=("complete",))
        observed = run_trace(spec, requests, log=log)
        assert observed.log.lines() == baseline.log.lines()
        assert observed.selections == baseline.selections


class TestRegistryPrimitives:
    def test_counter_monotone(self):
        counter = Counter("repro_test_total", "t", ("tier",))
        counter.labels("fleet").inc()
        counter.labels("fleet").inc(2.0)
        assert counter.value("fleet") == 3.0
        with pytest.raises(ValueError):
            counter.labels("fleet").inc(-1.0)

    def test_gauge_sets(self):
        gauge = Gauge("repro_test_depth", "t")
        gauge.set(7.0)
        gauge.set(3.0)
        assert gauge.value() == 3.0

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError):
            Counter("0bad", "t")
        with pytest.raises(ValueError):
            Counter("repro_ok_total", "t", ("0bad",))
        with pytest.raises(ValueError):
            Histogram("repro_h", "t", buckets=(2.0, 1.0))

    def test_duplicate_family_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", "t")
        with pytest.raises(ValueError):
            registry.counter("repro_x_total", "t")

    def test_histogram_exact_quantile_matches_numpy(self):
        histogram = Histogram("repro_lat", "t", ("tier",))
        values = [0.01, 0.2, 0.35, 0.8, 1.7, 4.0]
        for value in values:
            histogram.labels("fleet").observe(value)
        for p in (50, 95, 99):
            assert histogram.quantile(p, "fleet") == float(np.percentile(values, p))
        assert histogram.quantile(50, "device") is None

    def test_histogram_bucket_interpolation(self):
        cumulative = [(1.0, 50), (2.0, 100), (float("inf"), 100)]
        assert estimate_quantile_from_buckets(cumulative, 100, 50) == pytest.approx(1.0)
        assert estimate_quantile_from_buckets(cumulative, 100, 75) == pytest.approx(1.5)
        assert estimate_quantile_from_buckets([], 0, 50) is None


class TestExposition:
    def _sample_registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        counter = registry.counter("repro_demo_total", "Demo counter.", ("kind",))
        counter.labels("admit").inc(3)
        counter.labels('we"ird\nlabel').inc()
        registry.gauge("repro_demo_depth", "Demo gauge.").set(2.5)
        histogram = registry.histogram("repro_demo_seconds", "Demo histogram.", ("tier",))
        for value in (0.01, 0.3, 7.0, 200.0):
            histogram.labels("fleet").observe(value)
        return registry

    def test_every_line_is_grammatical(self):
        for line in self._sample_registry().render().splitlines():
            if not line:
                continue
            pattern = COMMENT_LINE if line.startswith("#") else SAMPLE_LINE
            assert pattern.match(line), f"malformed exposition line: {line!r}"

    def test_help_and_type_precede_samples(self):
        text = self._sample_registry().render()
        seen: set[str] = set()
        for line in text.splitlines():
            if line.startswith("# HELP "):
                seen.add(line.split()[2])
            elif line and not line.startswith("#"):
                name = re.split(r"[{ ]", line, 1)[0]
                base = re.sub(r"_(bucket|sum|count)$", "", name)
                assert base in seen or name in seen

    def test_histogram_buckets_monotone_and_inf_terminated(self):
        text = self._sample_registry().render()
        counts = []
        for line in text.splitlines():
            if line.startswith("repro_demo_seconds_bucket"):
                counts.append(int(line.rsplit(" ", 1)[1]))
        assert counts == sorted(counts), "cumulative buckets must be monotone"
        assert 'le="+Inf"' in text
        # The +Inf bucket equals _count (every observation lands somewhere).
        count = int(
            [l for l in text.splitlines() if l.startswith("repro_demo_seconds_count")][
                0
            ].rsplit(" ", 1)[1]
        )
        assert counts[-1] == count == 4

    def test_parse_round_trip(self):
        registry = self._sample_registry()
        samples = parse_exposition(registry.render())
        assert ({"kind": "admit"}, 3.0) in samples["repro_demo_total"]
        assert ({"kind": 'we"ird\nlabel'}, 1.0) in samples["repro_demo_total"]
        assert samples["repro_demo_depth"] == [({}, 2.5)]
        inf_buckets = [
            value
            for labels, value in samples["repro_demo_seconds_bucket"]
            if labels["le"] == "+Inf"
        ]
        assert inf_buckets == [4.0]

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_exposition("this is not { an exposition line\n")

    def test_dashboard_views_from_scrape(self):
        collector = TelemetryCollector()
        log = EventLog()
        sub = log.subscribe()
        log.emit("admit", at=0.0, tier="fleet", request=1, arrival=0.0)
        log.emit("complete", at=0.5, tier="fleet", request=1, latency=0.5)
        log.emit("admit", at=0.0, tier="fleet", request=2, arrival=0.0)
        log.emit("shed", at=0.1, tier="fleet", request=2, detail="rate_limit")
        collector.consume(sub)
        views = dashboard_views(parse_exposition(collector.registry.render()))
        (fleet,) = [v for v in views if v.tier == "fleet"]
        assert fleet.admitted == 2 and fleet.completed == 1 and fleet.shed == 1
        assert fleet.p50 is not None and 0.0 < fleet.p50 <= 1.0


class TestCollector:
    def test_all_kinds_observed_without_error(self):
        # Every kind in the taxonomy folds cleanly (no KeyError on a
        # payload-less event) and lands in repro_events_total.
        collector = TelemetryCollector()
        log = EventLog()
        sub = log.subscribe()
        for index, kind in enumerate(sorted(EVENT_KINDS)):
            log.emit(kind, at=float(index), tier="fleet", request=index)
        collector.consume(sub)
        assert collector.events_seen == len(EVENT_KINDS)
        assert collector.events_total.total() == len(EVENT_KINDS)

    def test_shed_reason_normalization(self):
        # A bare deadline shed (empty detail) counts as "deadline";
        # tenancy sheds keep their detail strings.
        collector = TelemetryCollector()
        log = EventLog()
        sub = log.subscribe()
        log.emit("shed", at=0.0, tier="fleet", request=1, detail="")
        log.emit("shed", at=0.0, tier="fleet", request=2, detail="rate_limit")
        log.emit("shed", at=0.0, tier="fleet", request=3, detail="queue_limit")
        collector.consume(sub)
        assert collector.shed.value("fleet", "deadline") == 1
        assert collector.shed.value("fleet", "rate_limit") == 1
        assert collector.shed.value("fleet", "queue_limit") == 1

    def test_device_latency_from_admit_pairing(self):
        # Device/engine completes carry no latency field: the collector
        # pairs them with the admit's arrival on the same replica axis.
        collector = TelemetryCollector()
        log = EventLog()
        sub = log.subscribe()
        log.emit("admit", at=0.0, tier="device", request=1, replica=0, arrival=0.25)
        log.emit("admit", at=0.0, tier="device", request=1, replica=1, arrival=0.5)
        log.emit("complete", at=1.0, tier="device", request=1, replica=0)
        log.emit("complete", at=2.0, tier="device", request=1, replica=1)
        collector.consume(sub)
        assert collector.latency.merged_samples("device") == [0.75, 1.5]

    def test_tenant_tier_validation(self):
        with pytest.raises(ValueError):
            TelemetryCollector(tenant_tier="warehouse")

    def test_burn_rate_tracks_shed_fraction(self):
        tenancy = TenancyConfig(default=TenantPolicy(slo="batch"))
        collector = TelemetryCollector(slo_of=slo_lookup(tenancy))
        log = EventLog()
        sub = log.subscribe()
        for index in range(4):
            log.emit("admit", at=0.0, tier="fleet", request=index, tenant="t")
        log.emit("shed", at=0.1, tier="fleet", request=0, tenant="t", detail="rate_limit")
        collector.consume(sub)
        # 1 shed / 4 submitted over batch's 0.80 bound.
        assert collector.slo_burn_rate.value("batch") == pytest.approx(0.25 / 0.80)


class TestScenarioEquivalence:
    """Registry-at-drain == post-hoc aggregation, per scenario."""

    @pytest.mark.parametrize("scenario", ["deadline", "resilience"])
    def test_registry_matches_summarize_events(self, scenario):
        spec, requests = build_scenario(scenario, quick=True)
        log = EventLog()
        sub = log.subscribe(capacity=65536)
        run = run_trace(spec, requests, log=log)
        collector = TelemetryCollector(tenant_tier=spec.tier)
        collector.consume(sub)
        assert sub.dropped == 0
        assert collector.events_seen == len(run.log)
        dashboard = summarize_events(run.log.events)
        assert dashboard.tiers, "scenario produced no serving-tier events"
        for tier in dashboard.tiers:
            assert collector.admitted.value(tier.tier) == tier.admitted
            assert collector.completed.value(tier.tier) == tier.completed
            shed = sum(
                child.value
                for labels, child in collector.shed.children.items()
                if labels[0] == tier.tier
            )
            assert shed == tier.shed
            assert collector.cancelled.value(tier.tier) == tier.cancelled
            failed = sum(
                child.value
                for labels, child in collector.failed.children.items()
                if labels[0] == tier.tier
            )
            assert failed == tier.failed
            # Exact equality — both sides are np.percentile over the
            # same latency samples, not a bucket approximation.
            assert collector.latency.quantile(50, tier.tier) == tier.p50_latency
            assert collector.latency.quantile(95, tier.tier) == tier.p95_latency
            assert collector.latency.quantile(99, tier.tier) == tier.p99_latency
        assert collector.faults.total() == dashboard.faults
        assert collector.failovers.value() == dashboard.failovers
        assert collector.hedges.total() == dashboard.hedges
        assert collector.fetches.total() == dashboard.fetches
        assert collector.fetched_bytes.total() == dashboard.fetched_bytes

    def test_fleet_stats_equivalence_with_tenancy_and_data_plane(self, batches):
        tenancy = TenancyConfig(
            policies={"greedy": TenantPolicy(rate=0.0, burst=2.0)},
        )
        log = EventLog()
        fleet = make_fleet(
            tenancy=tenancy, event_log=log, max_batch=4, data_plane=True
        )
        sub = log.subscribe(capacity=65536)
        collector = TelemetryCollector(slo_of=slo_lookup(tenancy))
        for index, batch in enumerate(batches):
            tenant = "greedy" if index % 2 else f"t{index % 3}"
            fleet.submit_request(batch, 2, at=index * 0.002, tenant=tenant)
        fleet.drain()
        collector.consume(sub)
        stats = fleet.stats()
        assert stats.tenants and fleet.dropped_requests  # sheds happened
        report = fleet_equivalence_report(collector, stats, fleet.dropped_requests)
        assert report == [], "\n".join(report)
        # Token debt at the last rate-limit shed is observable live.
        assert collector.tenant_token_debt.value("greedy") == pytest.approx(2.0)

    def test_equivalence_report_catches_divergence(self, batches):
        log = EventLog()
        fleet = make_fleet(event_log=log, max_batch=4)
        sub = log.subscribe(capacity=65536)
        collector = TelemetryCollector()
        for index, batch in enumerate(batches[:4]):
            fleet.submit_request(batch, 2, at=index * 0.002)
        fleet.drain()
        collector.consume(sub)
        # Poison one counter: the report must name the mismatch.
        collector.completed.labels("fleet").inc()
        report = fleet_equivalence_report(collector, fleet.stats(), fleet.dropped_requests)
        assert any(line.startswith("completed:") for line in report)


DEFAULT_BUCKET_COUNT = len(DEFAULT_LATENCY_BUCKETS)


def test_default_buckets_strictly_increasing():
    assert list(DEFAULT_LATENCY_BUCKETS) == sorted(set(DEFAULT_LATENCY_BUCKETS))
    assert DEFAULT_BUCKET_COUNT >= 10
