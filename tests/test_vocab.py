"""Unit tests for the Zipfian vocabulary model."""

import numpy as np
import pytest

from repro.text.vocab import Vocabulary


@pytest.fixture
def vocab():
    return Vocabulary(10_000)


class TestValidation:
    def test_size_must_exceed_specials(self):
        with pytest.raises(ValueError):
            Vocabulary(4, num_special=4)

    def test_zipf_exponent_positive(self):
        with pytest.raises(ValueError):
            Vocabulary(100, zipf_s=0.0)

    def test_special_token_ids_fixed(self, vocab):
        assert (vocab.PAD, vocab.BOS, vocab.EOS, vocab.SEP) == (0, 1, 2, 3)


class TestSampling:
    def test_sampling_is_deterministic_under_seed(self, vocab):
        a = vocab.sample(np.random.default_rng(7), 100)
        b = vocab.sample(np.random.default_rng(7), 100)
        assert np.array_equal(a, b)

    def test_specials_never_sampled(self, vocab):
        ids = vocab.sample(np.random.default_rng(0), 5000)
        assert (ids >= vocab.num_special).all()

    def test_ids_within_vocab(self, vocab):
        ids = vocab.sample(np.random.default_rng(0), 5000)
        assert (ids < vocab.size).all()

    def test_zero_count(self, vocab):
        assert vocab.sample(np.random.default_rng(0), 0).size == 0

    def test_negative_count_rejected(self, vocab):
        with pytest.raises(ValueError):
            vocab.sample(np.random.default_rng(0), -1)

    def test_distribution_is_skewed(self, vocab):
        """Low-rank (common) tokens dominate — the §4.4 premise."""
        ids = vocab.sample(np.random.default_rng(1), 20_000)
        top_100_share = (ids < vocab.num_special + 100).mean()
        assert top_100_share > 0.4  # Zipf s=1: top 100 of ~10k ≈ 53%


class TestProbabilities:
    def test_probabilities_sum_to_one(self, vocab):
        total = sum(vocab.token_probability(t) for t in range(vocab.num_special, vocab.size))
        assert total == pytest.approx(1.0)

    def test_specials_have_zero_probability(self, vocab):
        for t in range(vocab.num_special):
            assert vocab.token_probability(t) == 0.0

    def test_out_of_range_has_zero_probability(self, vocab):
        assert vocab.token_probability(vocab.size) == 0.0

    def test_probability_decreases_with_rank(self, vocab):
        p_first = vocab.token_probability(vocab.num_special)
        p_later = vocab.token_probability(vocab.num_special + 100)
        assert p_first > p_later > 0


class TestUniqueFraction:
    def test_monotone_in_draws(self, vocab):
        fractions = [vocab.expected_unique_fraction(n) for n in (0, 100, 1_000, 10_000)]
        assert fractions == sorted(fractions)
        assert fractions[0] == 0.0

    def test_sparsity_premise_of_embedding_cache(self):
        """§4.4: a reranking request touches a small vocab slice."""
        vocab = Vocabulary(151_669)
        # 20 docs × 512 tokens = 10,240 draws.
        assert vocab.expected_unique_fraction(10_240) < 0.07

    def test_negative_draws_rejected(self, vocab):
        with pytest.raises(ValueError):
            vocab.expected_unique_fraction(-5)
