"""Unit tests for the 18 dataset generators (§6.1)."""

import numpy as np
import pytest

from repro.data.datasets import (
    ALL_DATASETS,
    BEIR_DATASETS,
    EXTRA_DATASETS,
    get_dataset,
    list_datasets,
)


class TestCatalogue:
    def test_exactly_18_datasets(self):
        assert len(ALL_DATASETS) == 18

    def test_15_beir_plus_3_extra(self):
        assert len(BEIR_DATASETS) == 15
        assert set(EXTRA_DATASETS) == {"lotte", "wikipedia", "coderag"}

    def test_all_retrievable(self):
        for name in ALL_DATASETS:
            assert get_dataset(name).name == name

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError, match="wikipedia"):
            get_dataset("imagenet")

    def test_list_matches_catalogue(self):
        assert tuple(list_datasets()) == ALL_DATASETS

    def test_seeds_unique(self):
        seeds = {get_dataset(name).seed for name in ALL_DATASETS}
        assert len(seeds) == 18


class TestProfiles:
    def test_arguana_single_relevant(self):
        """ArguAna queries have exactly one counter-argument."""
        assert get_dataset("arguana").profile.relevant_range == (1, 1)

    def test_quora_short_documents(self):
        """Quora candidates are duplicate questions — short texts."""
        assert get_dataset("quora").doc_length_mean < 200

    def test_coderag_long_documents(self):
        assert get_dataset("coderag").doc_length_mean > 450

    def test_separation_varies_across_datasets(self):
        """Per-dataset separation spread drives Table 3's reduction range."""
        separations = {get_dataset(n).profile.separation for n in ALL_DATASETS}
        assert max(separations) - min(separations) > 0.3


class TestQueryGeneration:
    def test_deterministic(self):
        a = get_dataset("wikipedia").queries(3, num_candidates=20)
        b = get_dataset("wikipedia").queries(3, num_candidates=20)
        assert len(a) == len(b) == 3
        for qa, qb in zip(a, b):
            assert qa.seed == qb.seed
            assert np.array_equal(qa.relevance(), qb.relevance())

    def test_requested_pool_size(self):
        queries = get_dataset("msmarco").queries(2, num_candidates=30)
        assert all(q.num_candidates == 30 for q in queries)

    def test_different_datasets_differ(self):
        a = get_dataset("nq").queries(1)[0]
        b = get_dataset("fever").queries(1)[0]
        assert not np.array_equal(a.relevance(), b.relevance())

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            get_dataset("nq").queries(0)

    def test_labels_respect_profile_range(self):
        spec = get_dataset("arguana")
        for query in spec.queries(5):
            assert query.num_relevant == 1
