"""Tests for the fleet-shared semantic data plane (DESIGN.md §12).

Three layers — request memoization with in-flight coalescing,
partial-overlap candidate reuse, fleet-shared refcounted embedding
residency — plus the load-bearing edges: a memo hit never occupies a
scheduler slot, a dead leader (cancelled / shed / faulted) never
poisons the memo and never strands a follower, epoch invalidation
purges everything, and with the plane *off* serving is byte-identical
to a fleet that never heard of it.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.api import SelectionRequest
from repro.core.config import PrismConfig
from repro.core.data_plane import (
    DataPlane,
    DataPlaneConfig,
    DataPlaneStats,
    SharedEmbeddingCache,
)
from repro.core.events import EVENT_CACHE_EVICT, EVENT_CACHE_HIT, TERMINAL_KINDS, EventLog
from repro.core.fleet import FleetConfig, FleetService
from repro.core.resilience import (
    FAULT_REPLICA_CRASH,
    FAULT_SSD_READ_ERROR,
    FaultEvent,
    FaultPlan,
    ResilienceConfig,
)
from repro.core.service import SemanticSelectionService
from repro.data.datasets import get_dataset
from repro.data.workloads import CandidateSpec, RerankQuery, build_batch
from repro.device.executor import DeviceExecutor
from repro.device.platforms import NVIDIA_5070, get_profile
from repro.harness.runner import shared_model, shared_tokenizer
from repro.model.zoo import QWEN3_0_6B


@pytest.fixture(scope="module")
def batches():
    tokenizer = shared_tokenizer(QWEN3_0_6B)
    queries = get_dataset("wikipedia").queries(6, 12)
    return [build_batch(q, tokenizer, QWEN3_0_6B.max_seq_len) for q in queries]


@pytest.fixture(scope="module")
def overlap_batches():
    """A base batch plus a variant sharing exactly half its candidates
    (the zipf_request_stream mutation, pinned deterministic)."""
    tokenizer = shared_tokenizer(QWEN3_0_6B)
    (base_query,) = get_dataset("wikipedia").queries(1, 16)
    keep = 8
    fresh = tuple(
        CandidateSpec(
            uid=900_000 + i,
            seed=77_000 + i,
            length=base_query.candidates[0].length,
            relevance=0.1 + 0.05 * i,
            is_relevant=(0.1 + 0.05 * i) >= 0.5,
        )
        for i in range(len(base_query.candidates) - keep)
    )
    variant_query = RerankQuery(
        query_id=base_query.query_id,
        seed=base_query.seed,
        query_length=base_query.query_length,
        candidates=base_query.candidates[:keep] + fresh,
    )
    base = build_batch(base_query, tokenizer, QWEN3_0_6B.max_seq_len)
    variant = build_batch(variant_query, tokenizer, QWEN3_0_6B.max_seq_len)
    return base, variant


def make_fleet(num_replicas=1, profile="nvidia_5070", **kwargs):
    fleet_kwargs = {
        key: kwargs.pop(key)
        for key in ("fault_plan", "resilience", "autoscaler", "sample_rate", "event_log")
        if key in kwargs
    }
    return FleetService.homogeneous(
        shared_model(QWEN3_0_6B),
        get_profile(profile),
        num_replicas,
        fleet_config=FleetConfig(**kwargs),
        config=PrismConfig(numerics=False),
        **fleet_kwargs,
    )


def selection_bytes(result):
    return (result.top_indices.tobytes(), result.top_scores.tobytes())


def selections_by_id(outcomes):
    return {o.request_id: selection_bytes(o.result) for o in outcomes}


# ----------------------------------------------------------------------
# the plane as a passive directory
# ----------------------------------------------------------------------
class TestPlaneUnit:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            DataPlaneConfig(max_entries=0)
        with pytest.raises(ValueError):
            DataPlaneConfig(max_row_entries=0)
        with pytest.raises(ValueError):
            DataPlaneConfig(min_overlap=0.0)
        with pytest.raises(ValueError):
            DataPlaneConfig(min_overlap=1.5)

    def test_unused_plane_reports_no_hit_rate(self):
        stats = DataPlane().stats()
        assert stats.requests == 0
        assert stats.hit_rate is None
        # ... but a plane that saw traffic reports a real fraction.
        assert DataPlaneStats(requests=4, memo_hits=1).hit_rate == pytest.approx(0.25)

    def test_fingerprint_covers_full_semantic_identity(self, batches):
        plane = DataPlane(model_key="m:0")
        fp = plane.fingerprint(batches[0], 5, threshold=0.3, sample_rate=0.25)
        # Deterministic for identical inputs...
        assert fp == plane.fingerprint(batches[0], 5, threshold=0.3, sample_rate=0.25)
        # ...and sensitive to every selection-relevant dimension.
        assert fp != plane.fingerprint(batches[1], 5, threshold=0.3, sample_rate=0.25)
        assert fp != plane.fingerprint(batches[0], 6, threshold=0.3, sample_rate=0.25)
        assert fp != plane.fingerprint(batches[0], 5, threshold=0.4, sample_rate=0.25)
        assert fp != plane.fingerprint(batches[0], 5, threshold=0.3, sample_rate=0.5)
        other_model = DataPlane(model_key="m:1")
        assert fp != other_model.fingerprint(
            batches[0], 5, threshold=0.3, sample_rate=0.25
        )

    def test_epoch_bump_changes_fingerprints_and_purges(self, batches):
        plane = DataPlane()
        fp = plane.fingerprint(batches[0], 5, threshold=0.3)
        decision = plane.admit(fp, batches[0], payload="leader")
        assert decision.kind == "leader"
        followers = plane.complete(
            fp, batches[0], _FakeResult(), service_seconds=0.1, weight_bytes=10, at=1.0
        )
        assert followers == []
        assert plane.stats().memo_entries == 1
        assert plane.stats().row_entries == batches[0].size
        plane.bump_epoch(at=2.0, reason="test")
        assert plane.stats().memo_entries == 0
        assert plane.stats().row_entries == 0
        assert plane.stats().epoch == 1
        assert fp != plane.fingerprint(batches[0], 5, threshold=0.3)

    def test_threshold_recalibration_bumps_epoch_only_on_change(self, batches):
        plane = DataPlane()
        plane.on_threshold(0.3)  # first sighting seeds, no bump
        assert plane.epoch == 0
        plane.on_threshold(0.3)  # unchanged consensus: no bump
        assert plane.epoch == 0
        plane.on_threshold(0.35)  # recalibrated: purge
        assert plane.epoch == 1

    def test_pending_survives_epoch_bump(self, batches):
        """In-flight leaders must still resolve their followers after a
        recalibration — the epoch only gates reuse by later requests."""
        plane = DataPlane()
        fp = plane.fingerprint(batches[0], 5, threshold=0.3)
        plane.admit(fp, batches[0], payload="leader")
        plane.admit(fp, batches[0], payload="follower", at=0.5)
        plane.bump_epoch()
        followers = plane.complete(
            fp, batches[0], _FakeResult(), service_seconds=0.1, weight_bytes=10, at=1.0
        )
        assert [payload for payload, _ in followers] == ["follower"]

    def test_invalidate_returns_followers_once(self, batches):
        plane = DataPlane()
        fp = plane.fingerprint(batches[0], 5, threshold=0.3)
        plane.admit(fp, batches[0], payload="leader")
        plane.admit(fp, batches[0], payload="f1", at=0.1)
        plane.admit(fp, batches[0], payload="f2", at=0.2)
        followers = plane.invalidate(fp, at=0.3, reason="cancelled")
        assert [payload for payload, _ in followers] == ["f1", "f2"]
        stats = plane.stats()
        assert stats.invalidations == 1 and stats.redispatched == 2
        # Idempotent: the pending entry is gone.
        assert plane.invalidate(fp, at=0.4, reason="cancelled") == []

    def test_memo_lru_eviction_emits_cache_evict(self, batches):
        log = EventLog()
        plane = DataPlane(DataPlaneConfig(max_entries=2, max_row_entries=10_000))
        plane.attach_event_log(log)
        for batch in batches[:3]:
            fp = plane.fingerprint(batch, 5, threshold=0.3)
            plane.admit(fp, batch, payload=None)
            plane.complete(
                fp, batch, _FakeResult(), service_seconds=0.1, weight_bytes=1, at=1.0
            )
        stats = plane.stats()
        assert stats.memo_entries == 2
        assert stats.evictions >= 1
        evicts = [e for e in log.events if e.kind == EVENT_CACHE_EVICT]
        assert any(e.data.get("scope") == "memo" for e in evicts)


@dataclasses.dataclass
class _FakeResult:
    """Minimal result stand-in for plane unit tests."""

    top_indices: np.ndarray = dataclasses.field(default_factory=lambda: np.arange(5))
    top_scores: np.ndarray = dataclasses.field(
        default_factory=lambda: np.linspace(1.0, 0.0, 5)
    )
    prune_events: list = dataclasses.field(default_factory=list)


# ----------------------------------------------------------------------
# fleet memoization & coalescing
# ----------------------------------------------------------------------
class TestFleetMemoization:
    def test_memo_hit_is_byte_identical_and_free(self, batches):
        fleet = make_fleet(1, data_plane=True, max_batch=1, max_wait_ms=0.0)
        fleet.submit_request(batches[0], 5)
        (first,) = fleet.drain()
        busy_before = fleet.replicas[0].busy_seconds
        served_before = fleet.replicas[0].requests_served
        fleet.submit_request(batches[0], 5)
        (hit,) = fleet.drain()
        assert hit.cache == "hit"
        # A memo hit never occupies a scheduler slot: no replica, zero
        # service time, and the replica's counters never move.
        assert hit.replica is None
        assert hit.service_seconds == 0.0
        assert fleet.replicas[0].busy_seconds == busy_before
        assert fleet.replicas[0].requests_served == served_before
        assert selection_bytes(hit.result) == selection_bytes(first.result)
        stats = fleet.stats().data_plane
        assert stats is not None
        assert stats.memo_hits == 1 and stats.requests == 2
        assert stats.seconds_saved > 0 and stats.bytes_saved > 0

    def test_hit_result_is_a_private_copy(self, batches):
        fleet = make_fleet(1, data_plane=True, max_batch=1, max_wait_ms=0.0)
        fleet.submit_request(batches[0], 5)
        fleet.drain()
        fleet.submit_request(batches[0], 5)
        (hit,) = fleet.drain()
        hit.result.top_indices[:] = -1  # a rude caller scribbles on it
        fleet.submit_request(batches[0], 5)
        (second_hit,) = fleet.drain()
        assert not np.array_equal(second_hit.result.top_indices, hit.result.top_indices)

    def test_in_flight_coalescing(self, batches):
        fleet = make_fleet(1, data_plane=True, max_batch=1, max_wait_ms=0.0)
        leader_id = fleet.submit_request(batches[0], 5)
        follower_id = fleet.submit_request(batches[0], 5)
        outcomes = {o.request_id: o for o in fleet.drain()}
        assert outcomes[leader_id].cache is None  # served the pass
        follower = outcomes[follower_id]
        assert follower.cache == "coalesced"
        assert follower.service_seconds == 0.0
        assert follower.finish == outcomes[leader_id].finish
        assert selection_bytes(follower.result) == selection_bytes(
            outcomes[leader_id].result
        )
        stats = fleet.stats().data_plane
        assert stats.coalesced == 1 and stats.memo_hits == 0

    def test_memoize_false_opts_out_end_to_end(self, batches):
        fleet = make_fleet(1, data_plane=True, max_batch=1, max_wait_ms=0.0)
        fleet.submit_request(batches[0], 5, memoize=False)
        fleet.submit_request(batches[0], 5, memoize=False)
        outcomes = fleet.drain()
        assert all(o.cache is None for o in outcomes)
        assert all(o.replica is not None for o in outcomes)
        stats = fleet.stats().data_plane
        assert stats.requests == 0 and stats.hits == 0

    def test_plane_off_fleet_reports_no_plane_stats(self, batches):
        fleet = make_fleet(1, max_batch=1, max_wait_ms=0.0)
        fleet.submit_request(batches[0], 5)
        fleet.drain()
        assert fleet.stats().data_plane is None

    def test_plane_serving_is_byte_identical_to_plane_off(self, batches):
        """The tentpole exactness claim at fleet scope: a repeated
        stream through the plane selects byte-for-byte what a
        plane-less fleet selects."""
        stream = [batches[0], batches[1], batches[0], batches[2], batches[1], batches[0]]
        results = {}
        for mode in (False, True):
            fleet = make_fleet(2, data_plane=mode, max_batch=2, max_wait_ms=0.0)
            for batch in stream:
                fleet.submit_request(batch, 5)
            results[mode] = selections_by_id(fleet.drain())
        assert set(results[True]) == set(results[False])
        assert results[True] == results[False]

    def test_epoch_bump_forgets_completed_results(self, batches):
        fleet = make_fleet(1, data_plane=True, max_batch=1, max_wait_ms=0.0)
        fleet.submit_request(batches[0], 5)
        (first,) = fleet.drain()
        fleet.data_plane.bump_epoch(at=fleet.clock.now, reason="recalibration")
        fleet.submit_request(batches[0], 5)
        (again,) = fleet.drain()
        # No hit — the entry is gone and the fingerprint moved — but
        # the re-served selection is still byte-identical.
        assert again.cache is None and again.replica is not None
        assert selection_bytes(again.result) == selection_bytes(first.result)
        stats = fleet.stats().data_plane
        assert stats.memo_hits == 0 and stats.misses == 2


# ----------------------------------------------------------------------
# partial-overlap candidate reuse
# ----------------------------------------------------------------------
class TestFleetOverlap:
    @pytest.mark.parametrize("intra_concurrency", [1, 4])
    def test_overlap_reuse_is_exact(self, overlap_batches, intra_concurrency):
        base, variant = overlap_batches
        outcomes = {}
        for mode in (False, True):
            fleet = make_fleet(
                1,
                data_plane=mode,
                max_batch=1,
                max_wait_ms=0.0,
                intra_concurrency=intra_concurrency,
            )
            fleet.submit_request(base, 5)
            fleet.drain()
            fleet.submit_request(variant, 5)
            (outcome,) = fleet.drain()
            outcomes[mode] = outcome
            if mode:
                stats = fleet.stats().data_plane
                assert stats.overlap_hits == 1
                assert stats.shared_rows == 8 and stats.residue_rows == 8
                assert stats.seconds_saved > 0 and stats.bytes_saved > 0
        assert selection_bytes(outcomes[True].result) == selection_bytes(
            outcomes[False].result
        )
        # The reduced pass is cheaper than the full one.
        assert outcomes[True].service_seconds < outcomes[False].service_seconds

    def test_all_shared_subset_completes_without_a_pass(self, overlap_batches):
        """A batch whose every row is already in the directory needs no
        residue: pure shadow replay, zero service time."""
        base, _ = overlap_batches
        subset = base.select(np.arange(8))
        reference = make_fleet(1, max_batch=1, max_wait_ms=0.0)
        reference.submit_request(subset, 5)
        (expected,) = reference.drain()
        fleet = make_fleet(
            1, data_plane=True, max_batch=1, max_wait_ms=0.0, intra_concurrency=4
        )
        fleet.submit_request(base, 5)
        fleet.drain()
        fleet.submit_request(subset, 5)
        (outcome,) = fleet.drain()
        assert outcome.service_seconds == 0.0
        assert selection_bytes(outcome.result) == selection_bytes(expected.result)
        stats = fleet.stats().data_plane
        assert stats.overlap_hits == 1 and stats.residue_rows == 0

    def test_below_min_overlap_serves_a_full_pass(self, overlap_batches):
        base, variant = overlap_batches
        fleet = make_fleet(
            1,
            data_plane=True,
            data_plane_config=DataPlaneConfig(min_overlap=0.9),
            max_batch=1,
            max_wait_ms=0.0,
        )
        fleet.submit_request(base, 5)
        fleet.drain()
        fleet.submit_request(variant, 5)
        fleet.drain()
        stats = fleet.stats().data_plane
        assert stats.overlap_hits == 0 and stats.misses == 2


# ----------------------------------------------------------------------
# memoization edges: dead leaders (satellite c)
# ----------------------------------------------------------------------
class TestDeadLeaders:
    def test_cancelled_leader_redispatches_followers(self, batches):
        """A coalesced leader cancelled mid-pass must not strand its
        followers: the first becomes the new leader, siblings
        re-coalesce, and everyone still gets the exact selection."""
        reference = make_fleet(1, max_batch=1, max_wait_ms=0.0)
        reference.submit_request(batches[0], 5)
        (expected,) = reference.drain()

        fleet = make_fleet(1, data_plane=True, max_batch=1, max_wait_ms=0.0)
        leader_id = fleet.submit_request(batches[0], 5, cancel_at=0.05)
        f1 = fleet.submit_request(batches[0], 5)
        f2 = fleet.submit_request(batches[0], 5)
        outcomes = {o.request_id: o for o in fleet.drain()}
        (drop,) = fleet.dropped_requests
        assert drop.request_id == leader_id and drop.reason == "cancelled"
        assert set(outcomes) == {f1, f2}
        assert outcomes[f1].cache is None  # promoted to leader
        assert outcomes[f2].cache == "coalesced"  # re-coalesced onto f1
        for request_id in (f1, f2):
            assert selection_bytes(outcomes[request_id].result) == selection_bytes(
                expected.result
            )
        stats = fleet.stats().data_plane
        assert stats.invalidations == 1 and stats.redispatched == 2

    def test_shed_leader_never_poisons_the_memo(self, batches):
        """A leader shed behind a long batch leaves no memo entry: the
        next identical request is a fresh miss served by a real pass,
        never a hit on a result that was never computed."""
        fleet = make_fleet(1, data_plane=True, max_batch=1, max_wait_ms=0.0)
        fleet.submit_request(batches[1], 5)  # occupies the replica
        shed_id = fleet.submit_request(batches[0], 5, deadline=0.01)
        retry_id = fleet.submit_request(batches[0], 5, at=5.0)
        outcomes = {o.request_id: o for o in fleet.drain()}
        (drop,) = fleet.dropped_requests
        assert drop.request_id == shed_id and drop.reason == "shed"
        retry = outcomes[retry_id]
        assert retry.cache is None and retry.replica is not None
        reference = make_fleet(1, max_batch=1, max_wait_ms=0.0)
        reference.submit_request(batches[0], 5)
        (expected,) = reference.drain()
        assert selection_bytes(retry.result) == selection_bytes(expected.result)
        stats = fleet.stats().data_plane
        assert stats.memo_hits == 0 and stats.invalidations == 1

    def test_cancelled_follower_drops_while_waiting(self, batches):
        """A follower whose cancel fires before its leader finishes
        drops without ever occupying a replica."""
        fleet = make_fleet(1, data_plane=True, max_batch=1, max_wait_ms=0.0)
        leader_id = fleet.submit_request(batches[0], 5)
        follower_id = fleet.submit_request(batches[0], 5, cancel_at=0.01)
        outcomes = {o.request_id: o for o in fleet.drain()}
        assert leader_id in outcomes and follower_id not in outcomes
        (drop,) = fleet.dropped_requests
        assert drop.request_id == follower_id and drop.reason == "cancelled"

    @pytest.mark.parametrize(
        "fault_kind,num_replicas",
        [(FAULT_SSD_READ_ERROR, 1), (FAULT_REPLICA_CRASH, 2)],
    )
    def test_faulted_leader_invalidates_and_everyone_recovers(
        self, batches, fault_kind, num_replicas
    ):
        """The PR 5 fault matrix extended to plane leaders: an injected
        ``ssd_read_error`` / ``replica_crash`` kills the leader's
        pending entry (never the memo), its followers re-dispatch, and
        after failover every request completes with selections
        byte-identical to a plane-less fleet under the same plan."""
        plan = FaultPlan([FaultEvent(fault_kind, at=0.05, replica=0)])
        stream = [batches[0], batches[0], batches[1], batches[1]]
        results = {}
        for mode in (False, True):
            fleet = make_fleet(
                num_replicas,
                data_plane=mode,
                max_batch=2,
                max_wait_ms=0.0,
                fault_plan=plan,
                resilience=ResilienceConfig(max_retries=2, cooldown_s=1e6),
            )
            ids = [fleet.submit_request(batch, 5) for batch in stream]
            outcomes = fleet.drain()
            assert sorted(o.request_id for o in outcomes) == ids  # zero lost
            assert fleet.stats().failed_requests == 0
            results[mode] = selections_by_id(outcomes)
            if mode:
                stats = fleet.stats().data_plane
                # The faulted leader's pending entry was invalidated...
                assert stats.invalidations >= 1
                # ...and the plane still deduplicated the repeats.
                assert stats.hits >= 1
        assert results[True] == results[False]


# ----------------------------------------------------------------------
# observability: cache events & terminal accounting
# ----------------------------------------------------------------------
class TestPlaneEvents:
    def test_cache_hit_events_carry_mode(self, batches):
        log = EventLog()
        fleet = make_fleet(
            1, data_plane=True, max_batch=1, max_wait_ms=0.0, event_log=log
        )
        fleet.submit_request(batches[0], 5)
        fleet.submit_request(batches[0], 5)  # coalesces
        fleet.drain()
        fleet.submit_request(batches[0], 5)  # memo hit
        fleet.drain()
        hits = [e for e in log.events if e.kind == EVENT_CACHE_HIT]
        assert sorted(e.data["mode"] for e in hits) == ["coalesced", "memo"]
        assert all(e.tier == "fleet" for e in hits)

    def test_every_admission_still_gets_exactly_one_terminal(self, batches):
        """Plane short-circuits (hits, coalesced followers, redispatch)
        must preserve the §10 ledger: one terminal event per admit."""
        log = EventLog()
        fleet = make_fleet(
            1, data_plane=True, max_batch=1, max_wait_ms=0.0, event_log=log
        )
        fleet.submit_request(batches[0], 5, cancel_at=0.05)  # dying leader
        fleet.submit_request(batches[0], 5)  # re-dispatched follower
        fleet.submit_request(batches[0], 5)  # re-coalesced follower
        fleet.submit_request(batches[1], 5)  # plain miss
        fleet.drain()
        fleet.submit_request(batches[1], 5)  # memo hit
        fleet.drain()
        fleet_events = [e for e in log.events if e.tier == "fleet"]
        admitted = [e.request for e in fleet_events if e.kind == "admit"]
        assert len(admitted) == 5
        terminals = [e.request for e in fleet_events if e.kind in TERMINAL_KINDS]
        assert sorted(terminals) == sorted(admitted)

    def test_plane_off_fleet_emits_no_cache_events(self, batches):
        log = EventLog()
        fleet = make_fleet(1, max_batch=1, max_wait_ms=0.0, event_log=log)
        fleet.submit_request(batches[0], 5)
        fleet.submit_request(batches[0], 5)
        fleet.drain()
        assert not any(
            e.kind in (EVENT_CACHE_HIT, EVENT_CACHE_EVICT) for e in log.events
        )


# ----------------------------------------------------------------------
# device-tier plane (memoization + coalescing only)
# ----------------------------------------------------------------------
class TestDeviceTierPlane:
    def make_service(self, plane=True, **kwargs):
        return SemanticSelectionService(
            shared_model(QWEN3_0_6B),
            get_profile("nvidia_5070"),
            config=PrismConfig(numerics=False),
            max_concurrency=4,
            data_plane=DataPlane(model_key="qwen") if plane else None,
            **kwargs,
        )

    def wave_requests(self, batches):
        return [
            SelectionRequest(batch=batches[0], k=5, request_id="leader"),
            SelectionRequest(batch=batches[0], k=5, request_id="twin"),
            SelectionRequest(batch=batches[1], k=5, request_id="other"),
        ]

    def test_coalescing_and_memoization_in_one_wave(self, batches):
        service = self.make_service()
        wave = service.serve_requests(self.wave_requests(batches))
        # Align outcomes to input order via the wave's id mapping —
        # coalesced followers tie on finish, so sorted order lies.
        by_id = {o.request_id: o for o in wave.outcomes}
        leader, twin, other = (by_id[i] for i in wave.request_ids)
        assert twin.cache == "coalesced" and twin.request_id < 0
        assert twin.service_seconds == 0.0
        assert leader.cache is None and other.cache is None
        assert selection_bytes(twin.result) == selection_bytes(leader.result)
        # A verbatim repeat wave memo-hits without touching the engine.
        repeat = service.serve_requests(
            [SelectionRequest(batch=batches[0], k=5, request_id="again")]
        )
        (hit,) = repeat.outcomes
        assert hit.cache == "hit" and hit.service_seconds == 0.0
        assert selection_bytes(hit.result) == selection_bytes(leader.result)
        stats = service.data_plane.stats()
        assert stats.coalesced == 1 and stats.memo_hits == 1
        # The device-tier owner has no reduced-pass machinery: layer 2
        # must never have engaged.
        assert stats.overlap_hits == 0

    def test_plane_selections_match_plane_off_service(self, batches):
        plane_on = self.make_service().serve_requests(self.wave_requests(batches))
        plane_off = self.make_service(plane=False).serve_requests(
            self.wave_requests(batches)
        )
        on_by_id = {o.request_id: o for o in plane_on.outcomes}
        off_by_id = {o.request_id: o for o in plane_off.outcomes}
        for on_id, off_id in zip(plane_on.request_ids, plane_off.request_ids):
            assert selection_bytes(on_by_id[on_id].result) == selection_bytes(
                off_by_id[off_id].result
            )

    def test_memoize_false_bypasses_the_device_plane(self, batches):
        service = self.make_service()
        wave = service.serve_requests(
            [
                SelectionRequest(batch=batches[0], k=5, request_id="a", memoize=False),
                SelectionRequest(batch=batches[0], k=5, request_id="b", memoize=False),
            ]
        )
        assert all(o.cache is None for o in wave.outcomes)
        assert service.data_plane.stats().requests == 0


# ----------------------------------------------------------------------
# fleet-shared embedding residency (layer 3)
# ----------------------------------------------------------------------
class TestSharedEmbeddingCache:
    def make_executor(self):
        return DeviceExecutor(NVIDIA_5070.create())

    def make_plane(self, capacity=4, row_nbytes=2048):
        plane = SharedEmbeddingCache(capacity_rows=capacity)
        executor = self.make_executor()
        plane.attach(executor, vocab_size=1000, row_nbytes=row_nbytes)
        return plane, executor

    def test_construction_validation(self):
        with pytest.raises(ValueError):
            SharedEmbeddingCache(capacity_rows=0)
        with pytest.raises(ValueError):
            SharedEmbeddingCache(fraction=0.0)

    def test_attach_charges_each_devices_slab(self):
        plane, executor = self.make_plane(capacity=4, row_nbytes=1000)
        assert executor.device.memory.live_bytes("embedding-plane") == 4000
        second = self.make_executor()
        plane.attach(second, vocab_size=1000, row_nbytes=1000)
        assert second.device.memory.live_bytes("embedding-plane") == 4000
        plane.detach(second)
        assert second.device.memory.in_use == 0

    def test_row_size_mismatch_rejected(self):
        plane, _ = self.make_plane(row_nbytes=1000)
        with pytest.raises(ValueError):
            plane.attach(self.make_executor(), vocab_size=1000, row_nbytes=2000)

    def test_lookup_before_attach_rejected(self):
        plane = SharedEmbeddingCache(capacity_rows=4)
        with pytest.raises(RuntimeError):
            plane.lookup(np.array([1]), self.make_executor())

    def test_residency_is_shared_across_devices(self):
        """The promotion claim: a row one replica faulted in is a hit
        for every other replica, while the miss I/O stays charged on
        the replica that faulted it in."""
        plane, first = self.make_plane()
        second = self.make_executor()
        plane.attach(second, vocab_size=1000, row_nbytes=2048)
        lookup_a, pin_a = plane.lookup(np.array([1, 2, 3]), first)
        assert lookup_a.misses == 3 and first.now > 0
        lookup_b, pin_b = plane.lookup(np.array([1, 2, 3]), second)
        assert lookup_b.hits == 3 and lookup_b.io_seconds == 0.0
        assert second.now == 0.0  # no I/O billed to the hitting replica
        pin_a.release()
        pin_b.release()

    def test_pinned_rows_survive_lru_pressure(self):
        plane, executor = self.make_plane(capacity=2)
        _, pin = plane.lookup(np.array([1, 2]), executor)
        # Both rows pinned; a third admission cannot evict under the
        # reader — it overflows instead.
        plane.lookup(np.array([3]), executor)[1].release()
        assert plane.pinned_overflow == 1
        assert plane.is_resident(1) and plane.is_resident(2)
        pin.release()
        assert plane.pinned_rows == 0
        # Unpinned, the LRU reclaims down to capacity as usual.
        plane.lookup(np.array([4]), executor)[1].release()
        assert plane.resident_rows <= 3
        assert plane.total_evictions >= 1

    def test_pin_release_is_idempotent(self):
        plane, executor = self.make_plane()
        _, pin = plane.lookup(np.array([1]), executor)
        pin.release()
        pin.release()  # double release must not underflow the refcount
        assert plane.pinned_rows == 0

    def test_unused_plane_reports_no_hit_rate(self):
        plane, _ = self.make_plane()
        assert plane.hit_rate is None

    def test_fleet_replicas_share_one_directory(self, batches):
        fleet = make_fleet(
            2,
            shared_embedding_cache=True,
            max_batch=1,
            max_wait_ms=0.0,
            routing="round_robin",
        )
        assert fleet.embedding_plane is not None
        fleet.submit_request(batches[0], 5)
        fleet.submit_request(batches[0], 5)  # same tokens, other replica
        fleet.drain()
        plane = fleet.embedding_plane
        assert plane.total_hits > 0  # replica 1 hit rows replica 0 loaded
        # Every pass released its pins at the pass boundary.
        assert plane.pinned_rows == 0
        for replica in fleet.replicas:
            tracked = replica.service.device.memory.live_bytes("embedding-plane")
            assert tracked == plane.capacity_rows * plane.row_nbytes
