"""Unit tests for the reduced-width transformer layer numerics."""

import numpy as np
import pytest

from repro.model.layers import TransformerLayer, init_layer_weights
from repro.model.zoo import BGE_M3, QWEN3_0_6B


@pytest.fixture
def decoder_layer():
    return TransformerLayer(QWEN3_0_6B, init_layer_weights(QWEN3_0_6B, 0))


@pytest.fixture
def encoder_layer():
    return TransformerLayer(BGE_M3, init_layer_weights(BGE_M3, 0))


def _hidden(config, n=3, rng_seed=0):
    rng = np.random.default_rng(rng_seed)
    return rng.standard_normal((n, config.sim_seq_len, config.sim_hidden)) * 0.1


class TestInitialization:
    def test_deterministic_per_layer(self):
        a = init_layer_weights(QWEN3_0_6B, 3)
        b = init_layer_weights(QWEN3_0_6B, 3)
        assert np.array_equal(a.wq, b.wq)
        assert np.array_equal(a.w_down, b.w_down)

    def test_layers_differ(self):
        a = init_layer_weights(QWEN3_0_6B, 0)
        b = init_layer_weights(QWEN3_0_6B, 1)
        assert not np.array_equal(a.wq, b.wq)

    def test_decoder_has_gate_no_norm_bias(self):
        w = init_layer_weights(QWEN3_0_6B, 0)
        assert w.w_gate is not None
        assert w.norm1_bias is None

    def test_encoder_has_norm_bias_no_gate(self):
        w = init_layer_weights(BGE_M3, 0)
        assert w.w_gate is None
        assert w.norm1_bias is not None

    def test_nbytes_actual_positive(self):
        assert init_layer_weights(QWEN3_0_6B, 0).nbytes_actual() > 0


class TestForward:
    def test_output_shape_matches_input(self, decoder_layer):
        hidden = _hidden(QWEN3_0_6B)
        lengths = np.full(3, QWEN3_0_6B.sim_seq_len)
        out = decoder_layer.forward(hidden, lengths)
        assert out.shape == hidden.shape

    def test_input_not_modified(self, decoder_layer):
        hidden = _hidden(QWEN3_0_6B)
        copy = hidden.copy()
        decoder_layer.forward(hidden, np.full(3, QWEN3_0_6B.sim_seq_len))
        assert np.array_equal(hidden, copy)

    def test_rejects_wrong_rank(self, decoder_layer):
        with pytest.raises(ValueError):
            decoder_layer.forward(np.zeros((4, 8)), np.array([8]))

    def test_deterministic(self, decoder_layer):
        hidden = _hidden(QWEN3_0_6B)
        lengths = np.full(3, QWEN3_0_6B.sim_seq_len)
        assert np.array_equal(
            decoder_layer.forward(hidden, lengths), decoder_layer.forward(hidden, lengths)
        )

    def test_encoder_forward_runs(self, encoder_layer):
        hidden = _hidden(BGE_M3)
        out = encoder_layer.forward(hidden, np.full(3, BGE_M3.sim_seq_len))
        assert np.isfinite(out).all()


class TestCausality:
    def test_decoder_output_ignores_future_positions(self, decoder_layer):
        """Causal attention: changing position j must not affect i < j."""
        seq = QWEN3_0_6B.sim_seq_len
        lengths = np.full(1, seq)
        hidden = _hidden(QWEN3_0_6B, n=1)
        perturbed = hidden.copy()
        perturbed[0, seq - 1, 0] += 1.0  # poke the final position
        out_a = decoder_layer.forward(hidden, lengths)
        out_b = decoder_layer.forward(perturbed, lengths)
        # All positions before the poke are identical...
        assert np.allclose(out_a[0, : seq - 1], out_b[0, : seq - 1])
        # ...and the poked position itself changed.
        assert not np.allclose(out_a[0, seq - 1], out_b[0, seq - 1])

    def test_encoder_output_sees_future_positions(self, encoder_layer):
        """Bidirectional attention: a late poke reaches early positions."""
        seq = BGE_M3.sim_seq_len
        lengths = np.full(1, seq)
        hidden = _hidden(BGE_M3, n=1)
        perturbed = hidden.copy()
        # Poke one channel (a uniform shift would be removed by LayerNorm).
        perturbed[0, seq - 1, 0] += 1.0
        out_a = encoder_layer.forward(hidden, lengths)
        out_b = encoder_layer.forward(perturbed, lengths)
        assert not np.allclose(out_a[0, 0], out_b[0, 0], atol=1e-9)


class TestPadding:
    def test_padded_positions_do_not_influence_valid_ones(self, encoder_layer):
        """Perturbing tokens beyond a row's length must not change the
        valid positions' outputs (padding mask)."""
        seq = BGE_M3.sim_seq_len
        valid = seq // 2
        lengths = np.array([valid])
        hidden = _hidden(BGE_M3, n=1)
        perturbed = hidden.copy()
        perturbed[0, valid:, 0] += 5.0  # channel poke survives LayerNorm
        out_a = encoder_layer.forward(hidden, lengths)
        out_b = encoder_layer.forward(perturbed, lengths)
        assert np.allclose(out_a[0, :valid], out_b[0, :valid])
