"""Doc-consistency checks: source citations must resolve into the docs.

Module docstrings cite design sections as ``DESIGN.md §N``.  These
tests grep every source file for such references and fail when the
cited section heading is missing from DESIGN.md — so a doc
reorganisation cannot silently strand the citations, and a new
citation cannot point at a section that was never written.
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DESIGN_MD = REPO_ROOT / "DESIGN.md"
SRC_ROOT = REPO_ROOT / "src" / "repro"

CITATION = re.compile(r"DESIGN\.md\s+§(\d+)")
HEADING = re.compile(r"^#+\s.*§(\d+)", re.MULTILINE)


def design_sections() -> set[int]:
    return {int(n) for n in HEADING.findall(DESIGN_MD.read_text())}


def source_citations() -> list[tuple[str, int]]:
    citations = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        for number in CITATION.findall(path.read_text()):
            citations.append((str(path.relative_to(REPO_ROOT)), int(number)))
    return citations


def test_design_md_exists_with_numbered_sections():
    assert DESIGN_MD.is_file(), "DESIGN.md is missing from the repo root"
    assert design_sections() >= {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14}


def test_scheduler_sources_cite_section_6():
    """The §6 citation net is live: the step-based execution core and
    the device scheduler must anchor their design in DESIGN.md §6."""
    cited_by = {source for source, section in source_citations() if section == 6}
    for module in (
        "src/repro/core/engine.py",
        "src/repro/core/scheduler.py",
    ):
        assert module in cited_by, f"{module} no longer cites DESIGN.md §6"


def test_weight_plane_sources_cite_section_7():
    """The §7 citation net is live: the shared weight plane must anchor
    its refcount/fusion design in DESIGN.md §7."""
    cited_by = {source for source, section in source_citations() if section == 7}
    assert "src/repro/core/streaming.py" in cited_by, (
        "src/repro/core/streaming.py no longer cites DESIGN.md §7"
    )


def test_resilience_sources_cite_section_9():
    """The §9 citation net is live: the fault plane and the resilience
    policy layer must anchor their design in DESIGN.md §9."""
    cited_by = {source for source, section in source_citations() if section == 9}
    for module in (
        "src/repro/core/resilience.py",
        "src/repro/device/faults.py",
    ):
        assert module in cited_by, f"{module} no longer cites DESIGN.md §9"


def test_observability_sources_cite_section_10():
    """The §10 citation net is live: the event log and trace
    record/replay must anchor their design in DESIGN.md §10."""
    cited_by = {source for source, section in source_citations() if section == 10}
    for module in (
        "src/repro/core/events.py",
        "src/repro/core/trace.py",
    ):
        assert module in cited_by, f"{module} no longer cites DESIGN.md §10"


def test_gang_kernel_sources_cite_section_11():
    """The §11 citation net is live: the deferred-numerics pool, the
    fused kernel and the memoized tensor ops must anchor their design
    in DESIGN.md §11."""
    cited_by = {source for source, section in source_citations() if section == 11}
    for module in (
        "src/repro/model/transformer.py",
        "src/repro/model/tensor_ops.py",
    ):
        assert module in cited_by, f"{module} no longer cites DESIGN.md §11"


def test_data_plane_sources_cite_section_12():
    """The §12 citation net is live: the data plane must anchor its
    memoization/coalescing/overlap design in DESIGN.md §12."""
    cited_by = {source for source, section in source_citations() if section == 12}
    assert "src/repro/core/data_plane.py" in cited_by, (
        "src/repro/core/data_plane.py no longer cites DESIGN.md §12"
    )


def test_tenancy_sources_cite_section_13():
    """The §13 citation net is live: the traffic generator and the
    fair-admission plane must anchor their design in DESIGN.md §13."""
    cited_by = {source for source, section in source_citations() if section == 13}
    for module in (
        "src/repro/core/tenancy.py",
        "src/repro/data/traffic.py",
    ):
        assert module in cited_by, f"{module} no longer cites DESIGN.md §13"


def test_telemetry_sources_cite_section_14():
    """The §14 citation net is live: the metrics registry and the live
    progress server must anchor their design in DESIGN.md §14."""
    cited_by = {source for source, section in source_citations() if section == 14}
    for module in (
        "src/repro/core/telemetry.py",
        "src/repro/harness/live.py",
    ):
        assert module in cited_by, f"{module} no longer cites DESIGN.md §14"


def test_sources_cite_design_sections():
    """The citation net is live (a regression that strips every
    citation would make the resolution test below vacuous)."""
    assert len(source_citations()) >= 5


@pytest.mark.parametrize(
    "source,section",
    source_citations() or [("<none>", 0)],
    ids=lambda value: str(value),
)
def test_citation_resolves(source, section):
    if source == "<none>":
        pytest.skip("no citations found (covered by the liveness test)")
    assert section in design_sections(), (
        f"{source} cites DESIGN.md §{section}, but DESIGN.md has no "
        f"heading for §{section} (known: {sorted(design_sections())})"
    )


def test_readme_documents_tier1_verify():
    readme = (REPO_ROOT / "README.md").read_text()
    assert "python -m pytest -x -q" in readme
    assert "PYTHONPATH=src" in readme


def test_serving_docs_cover_all_four_modes():
    serving = (REPO_ROOT / "docs" / "serving.md").read_text()
    for name in (
        "ThresholdCalibrator",
        "SemanticSelectionService",
        "DeviceScheduler",
        "FleetService",
    ):
        assert name in serving, f"docs/serving.md no longer documents {name}"
    for concept in (
        "select_concurrent",
        "intra_concurrency",
        "priority",
        "WeightPlane",
        "shared_weights",
        "fusion",
        "max_skew",
    ):
        assert concept in serving, f"docs/serving.md no longer covers {concept}"


def test_serving_docs_cover_resilience_plane():
    """docs/serving.md must document the §9 resilience plane: faults,
    failover, hedging and the autoscaler."""
    serving = (REPO_ROOT / "docs" / "serving.md").read_text()
    assert "Faults, failover and autoscaling" in serving
    for concept in (
        "FaultPlan",
        "FaultEvent",
        "DeviceFault",
        "ResilienceConfig",
        "AutoscalerConfig",
        "hedge_after_ms",
        "failed_over_from",
        "max_retries",
        "scale_up_queue_depth",
        "scaling_events",
    ):
        assert concept in serving, f"docs/serving.md resilience section misses {concept}"


def test_observability_docs_cover_event_plane():
    """docs/observability.md must document the §10 observability plane:
    the event taxonomy, record/replay workflow, CLI and fixtures."""
    doc = (REPO_ROOT / "docs" / "observability.md").read_text()
    for concept in (
        "EventLog",
        "EVENT_KINDS",
        "TERMINAL_KINDS",
        "record_trace",
        "replay_trace",
        "ReplayReport",
        "TraceSpec",
        "event_log=",
        "trace record",
        "trace replay",
        "trace summary",
        "tests/fixtures/traces/",
        "Zero perturbation",  # the no-sink guarantee is named
    ):
        assert concept in doc, f"docs/observability.md no longer covers {concept}"
    # The documented fixture-regeneration command must reference the
    # real CLI entry point.
    assert "repro.harness.cli trace record" in doc


def test_observability_docs_cover_live_telemetry():
    """docs/observability.md must document the §14 live telemetry
    plane: subscriptions, the metrics namespace, the progress server's
    three endpoints, the equivalence contract, and timeline export."""
    doc = (REPO_ROOT / "docs" / "observability.md").read_text()
    assert "Live telemetry" in doc
    for concept in (
        "EventLog.subscribe",
        "TelemetryCollector",
        "MetricsRegistry",
        "fleet_equivalence_report",
        "parse_exposition",
        "repro_requests_shed_total",
        "repro_request_latency_seconds",
        "repro_slo_burn_rate",
        "--live-port",
        "/metrics",
        "/events",
        "/healthz",
        "?replay=1",
        "trace timeline",
        "--follow",
        "Perfetto",
    ):
        assert concept in doc, f"docs/observability.md live section misses {concept}"
    # The README points readers at the live surfaces.
    readme = (REPO_ROOT / "README.md").read_text()
    assert "--live-port" in readme
    assert "trace timeline" in readme


def test_serving_docs_cover_multitenant_plane():
    """docs/serving.md must document the §13 multi-tenant workload
    plane: traffic generation, fair admission and the contract views."""
    serving = (REPO_ROOT / "docs" / "serving.md").read_text()
    assert "Multi-tenant admission" in serving
    for concept in (
        "TrafficConfig",
        "generate_traffic",
        "TenancyConfig",
        "TenantPolicy",
        "tenancy_from_trace",
        "selection_requests_from_trace",
        "rate_limit",
        "queue_limit",
        "starvation-freedom",
        "shed_bound",
        "starved_tenants",
        "shed_bound_violations",
        "traffic generate",
        "traffic summary",
        "BENCH_multitenant.json",
        "--multitenant-fresh",
    ):
        assert concept in serving, f"docs/serving.md multi-tenant section misses {concept}"
    # The README points readers at the study and the traffic CLI.
    readme = (REPO_ROOT / "README.md").read_text()
    assert "cli tenants" in readme
    assert "traffic generate" in readme


def test_performance_docs_cover_hotpath_and_gate():
    """docs/performance.md must document the §11 wall-clock story: the
    microbench scenarios, the artifact fields, the gate's anchor
    normalisation and the injected-slowdown self-test."""
    doc = (REPO_ROOT / "docs" / "performance.md").read_text()
    for concept in (
        "BENCH_hotpath.json",
        "wall_time_s_per_step",
        "batched_vs_sequential_n",
        "solo",
        "sequential_gang_n8",
        "batched_gang_n8",
        "perf_gate.py",
        "--threshold",
        "--min-speedup-n8",
        "--inject-slowdown",
        "BENCH_QUICK",
        "gang_kernels",
        "test_gang_kernels.py",
    ):
        assert concept in doc, f"docs/performance.md no longer covers {concept}"
    # The documented refresh command must reference the real bench.
    assert "pytest -q benchmarks/test_hotpath.py" in doc


def test_performance_docs_cover_data_plane_gate():
    """docs/performance.md must document the §12 cache story: the
    Zipf bench, the artifact's gated fields, and the gate flags."""
    doc = (REPO_ROOT / "docs" / "performance.md").read_text()
    for concept in (
        "BENCH_data_plane.json",
        "speedup_cached",
        "identical_selections",
        "zipf_request_stream",
        "--data-plane-baseline",
        "--data-plane-fresh",
        "--min-cache-speedup",
        "cache_hit",
        "cache_evict",
        "test_data_plane.py",
        "DataPlaneStats",
    ):
        assert concept in doc, f"docs/performance.md no longer covers {concept}"
    assert "pytest -q benchmarks/test_data_plane.py" in doc


def test_readme_points_at_observability_docs():
    readme = (REPO_ROOT / "README.md").read_text()
    assert "docs/observability.md" in readme
    assert "trace record" in readme


def test_readme_points_at_data_plane():
    readme = (REPO_ROOT / "README.md").read_text()
    assert "cli cache" in readme
    assert "DataPlaneStats" in readme
