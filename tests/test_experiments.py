"""Shape tests for the per-figure experiment entry points.

Each experiment runs at a scaled-down size and the assertions check the
paper's qualitative claims — who wins, roughly by how much, and where
the crossovers sit.  The full-scale numbers live in ``benchmarks/``.
"""

import numpy as np
import pytest

from repro.harness import experiments as ex


class TestFig1:
    @pytest.fixture(scope="class")
    def result(self):
        return ex.fig1_pipeline(num_docs=100, num_queries=2)

    def test_rerank_dominates_latency(self, result):
        """The paper reports a 96.3 % reranker latency share."""
        assert result.rerank_latency_share > 0.9

    def test_rerank_dominates_memory(self, result):
        assert result.rerank_memory_share > 0.6

    def test_retrieval_fast_and_small(self, result):
        assert result.retrieval_seconds < 0.05
        assert result.retrieval_mib < result.rerank_peak_mib

    def test_render(self, result):
        text = result.render()
        assert "Figure 1" in text and "rerank" in text


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self):
        return ex.fig2_sparsity(num_queries=2)

    def test_gamma_rises_with_depth(self, result):
        """Figure 2b: γ increases toward 1.0 at the final layer."""
        assert result.gamma[-1] == pytest.approx(1.0)
        assert np.mean(result.gamma[-5:]) > np.mean(result.gamma[:5])

    def test_cluster_gamma_near_one_once_clusters_form(self, result):
        """Figure 2b: inter-cluster rankings are stable (≈1.0) from the
        point where clusters first emerge."""
        assert np.mean(result.cluster_gamma_values[3:]) > 0.9

    def test_trajectories_fan_out(self, result):
        """Figure 2a: score spread grows with depth."""
        spread_early = result.trajectories[:, 1].std()
        spread_late = result.trajectories[:, -1].std()
        assert spread_late > 2 * spread_early

    def test_works_for_encoder_architecture(self):
        result = ex.fig2_sparsity(model_name="bge-reranker-v2-m3", num_queries=1)
        assert result.gamma[-1] == pytest.approx(1.0)

    def test_render(self, result):
        assert "cluster_gamma" in result.render()


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self):
        return ex.table3(
            models=("qwen3-reranker-0.6b",),
            datasets=("wikipedia", "nfcorpus"),
            platforms=("nvidia_5070",),
            ks=(1, 10),
            num_queries=2,
        )

    def test_rows_for_each_baseline_and_k(self, result):
        assert len(result.rows) == 6  # 3 baselines × 2 Ks

    def test_prism_reduces_latency_vs_all_baselines(self, result):
        for baseline in ("hf", "hf_offload", "hf_quant"):
            row = result.find("qwen3-reranker-0.6b", baseline, 10)
            assert row.reduction_mean > 0.05

    def test_offload_reduction_larger_than_hf(self, result):
        """HF-Offload is the slowest baseline, so reductions vs it are
        the largest — Table 3's pattern."""
        hf = result.find("qwen3-reranker-0.6b", "hf", 10)
        offload = result.find("qwen3-reranker-0.6b", "hf_offload", 10)
        assert offload.reduction_mean > hf.reduction_mean

    def test_precision_losses_tiny(self, result):
        for row in result.rows:
            assert row.precision_loss_max > -0.12

    def test_oom_for_big_models_on_edge(self):
        result = ex.table3(
            models=("qwen3-reranker-8b",),
            datasets=("wikipedia",),
            platforms=("nvidia_5070",),
            ks=(10,),
            num_queries=1,
        )
        assert result.find("qwen3-reranker-8b", "hf", 10).baseline_oom

    def test_render(self, result):
        assert "Table 3" in result.render()


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return ex.fig8_wikipedia(
            models=("qwen3-reranker-0.6b",),
            platforms=("nvidia_5070",),
            ks=(10,),
            num_queries=2,
        )

    def test_seven_systems(self, result):
        assert len(result.cells) == 7

    def test_prism_low_fastest(self, result):
        cells = {c.system: c for c in result.cells}
        assert cells["prism_low"].latency <= cells["prism_high"].latency
        assert cells["prism_low"].latency < cells["hf"].latency
        assert cells["hf"].latency < cells["hf_offload"].latency

    def test_quant_slower_than_plain_prism(self, result):
        cells = {c.system: c for c in result.cells}
        assert cells["prism_quant_low"].latency > cells["prism_low"].latency

    def test_precision_band(self, result):
        for cell in result.cells:
            if not cell.oom:
                assert 0.5 < cell.precision <= 1.0

    def test_render(self, result):
        assert "Wikipedia" in result.render()


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        return ex.fig9_memory(models=("qwen3-reranker-0.6b", "qwen3-reranker-4b"))

    def test_prism_smallest_everywhere(self, result):
        for model in ("qwen3-reranker-0.6b", "qwen3-reranker-4b"):
            prism = result.find(model, "prism").peak_mib
            for system in ("hf", "hf_offload", "hf_quant"):
                assert prism < result.find(model, system).peak_mib

    def test_peak_ratio_bands(self, result):
        """Paper: 5.34–11.45× vs HF, 1.34–3.83× vs Offload,
        2.77–4.83× vs Quant."""
        assert 4 < result.peak_ratio("qwen3-reranker-0.6b", "hf") < 14
        assert 1.2 < result.peak_ratio("qwen3-reranker-0.6b", "hf_offload") < 5
        assert 2 < result.peak_ratio("qwen3-reranker-0.6b", "hf_quant") < 6

    def test_4b_hf_ooms_on_edge(self, result):
        row = result.find("qwen3-reranker-4b", "hf")
        assert row.oom_on_edge
        assert row.platform == "nvidia_a800"

    def test_timelines_recorded(self, result):
        assert result.find("qwen3-reranker-0.6b", "prism").timeline

    def test_render_marks_a800_fallback(self, result):
        assert "(A800)" in result.render()


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        return ex.fig10_tradeoff(num_thresholds=4, num_queries=3)

    def test_latency_rises_with_threshold(self, result):
        latencies = result.latencies()
        assert latencies[-1] > latencies[0]

    def test_precision_within_band(self, result):
        for k in (1, 5, 10):
            for p in result.precisions(k):
                assert 0.4 <= p <= 1.0

    def test_render(self, result):
        assert "threshold" in result.render()


class TestFig11:
    @pytest.fixture(scope="class")
    def result(self):
        return ex.fig11_rag(num_docs=100, num_queries=3)

    def test_both_platforms_present(self, result):
        assert set(result.runs) == {"apple_m2", "nvidia_5070"}

    def test_prism_wins_on_both_platforms(self, result):
        for platform in result.runs:
            hf = result.runs[platform]["hf"]
            prism = result.runs[platform]["prism"]
            assert prism.mean_latency < hf.mean_latency
            assert prism.peak_mib < hf.peak_mib

    def test_render(self, result):
        assert "RAG" in result.render()


class TestFig12_13:
    @pytest.fixture(scope="class")
    def result(self):
        return ex.fig12_13_agent_memory(workloads=("video",))

    def test_three_systems(self, result):
        assert set(result.runs["video"]) == {"disable", "hf", "prism"}

    def test_ordering(self, result):
        runs = result.runs["video"]
        assert runs["prism"].mean_latency < runs["hf"].mean_latency
        assert runs["hf"].mean_latency < runs["disable"].mean_latency

    def test_render(self, result):
        assert "agent memory" in result.render()


class TestFig14_15:
    @pytest.fixture(scope="class")
    def result(self):
        return ex.fig14_15_long_context(num_tasks=6)

    def test_three_systems(self, result):
        assert set(result.runs) == {"baseline", "hf", "prism"}

    def test_ordering(self, result):
        assert result.runs["prism"].mean_latency < result.runs["hf"].mean_latency
        assert result.runs["hf"].mean_latency < result.runs["baseline"].mean_latency

    def test_memory_gap(self, result):
        assert result.runs["prism"].peak_mib < result.runs["hf"].peak_mib

    def test_render(self, result):
        assert "long-context" in result.render()


class TestFig16:
    @pytest.fixture(scope="class")
    def result(self):
        return ex.fig16_ablation()

    def test_five_steps(self, result):
        assert [r.step for r in result.rows] == list(ex.ABLATION_STEPS)

    def test_pruning_cuts_latency(self, result):
        assert result.find("+pruning").latency < 0.75 * result.find("hf").latency

    def test_pruning_inflates_peak_memory(self, result):
        """The monolithic batch costs memory until chunking reclaims it."""
        assert result.find("+pruning").peak_mib > result.find("hf").peak_mib

    def test_chunking_reclaims_memory(self, result):
        assert result.find("+chunked").peak_mib < result.find("+pruning").peak_mib

    def test_streaming_big_memory_cut_small_latency_cost(self, result):
        chunked = result.find("+chunked")
        streaming = result.find("+streaming")
        assert streaming.peak_mib < 0.6 * chunked.peak_mib
        assert streaming.latency - chunked.latency < 0.1 * chunked.latency

    def test_embedding_cache_final_cut(self, result):
        assert result.find("+embedding-cache").peak_mib < 0.6 * result.find("+streaming").peak_mib

    def test_full_stack_vs_baseline(self, result):
        """The paper's combined claim: −48.5 % latency, −78.4 % peak."""
        hf = result.find("hf")
        full = result.find("+embedding-cache")
        assert full.latency < 0.75 * hf.latency
        assert full.peak_mib < 0.35 * hf.peak_mib

    def test_render(self, result):
        assert "ablation" in result.render()


class TestOverlapWindowSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return ex.overlap_window_sweep(bandwidths_gbps=(0.5, 3.5), num_queries=2)

    def test_latency_monotone_in_bandwidth(self, result):
        assert result.points[0].latency > result.points[1].latency

    def test_slow_storage_breaks_the_window(self, result):
        slow, fast = result.points
        assert slow.io_stall_seconds > 5 * fast.io_stall_seconds

    def test_memory_independent_of_bandwidth(self, result):
        slow, fast = result.points
        assert slow.peak_mib == pytest.approx(fast.peak_mib, abs=1.0)

    def test_render(self, result):
        text = result.render()
        assert "Overlap-window" in text and "HF reference" in text
