"""Behaviour tests for the RAG assistant pipeline (Figure 11)."""

import pytest

from repro.apps.rag import RagPipeline
from repro.model.zoo import QWEN3_0_6B
from repro.retrieval.corpus import SyntheticCorpus


@pytest.fixture(scope="module")
def corpus():
    return SyntheticCorpus(num_docs=120, num_topics=8)


@pytest.fixture(scope="module")
def queries(corpus):
    return corpus.make_queries(4)


@pytest.fixture(scope="module")
def hf_run(corpus, queries):
    return RagPipeline(corpus, QWEN3_0_6B, "apple_m2", system="hf").run(
        queries, keep_timeline=True
    )


@pytest.fixture(scope="module")
def prism_run(corpus, queries):
    return RagPipeline(corpus, QWEN3_0_6B, "apple_m2", system="prism").run(
        queries, keep_timeline=True
    )


class TestStageBreakdown:
    def test_all_stages_present(self, hf_run):
        stages = hf_run.stage_means()
        assert set(stages) == {"sparse", "dense", "rerank", "first_token"}
        assert all(v > 0 for v in stages.values())

    def test_rerank_dominates_pipeline(self, hf_run):
        """Figure 1: the reranker contributes the vast majority of
        end-to-end latency under the vanilla engine."""
        assert hf_run.rerank_share > 0.5

    def test_retrieval_stage_is_milliseconds(self, hf_run):
        stages = hf_run.stage_means()
        assert stages["sparse"] + stages["dense"] < 0.05


class TestSystemComparison:
    def test_prism_faster(self, hf_run, prism_run):
        assert prism_run.mean_latency < hf_run.mean_latency

    def test_prism_rerank_stage_faster(self, hf_run, prism_run):
        assert prism_run.stage_means()["rerank"] < hf_run.stage_means()["rerank"]

    def test_prism_smaller_peak(self, hf_run, prism_run):
        """Figure 11b/c: large peak- and average-memory reductions."""
        assert prism_run.peak_mib < 0.5 * hf_run.peak_mib

    def test_prism_smaller_average(self, hf_run, prism_run):
        assert prism_run.avg_mib < 0.5 * hf_run.avg_mib

    def test_generation_stage_identical(self, hf_run, prism_run):
        """The first-token stage runs on the same remote server."""
        assert prism_run.stage_means()["first_token"] == pytest.approx(
            hf_run.stage_means()["first_token"], rel=0.2
        )

    def test_accuracy_comparable(self, hf_run, prism_run):
        """Figure 11a: no accuracy loss from PRISM's pruning."""
        assert abs(prism_run.accuracy - hf_run.accuracy) <= 0.25


class TestResultRecords:
    def test_per_query_records(self, prism_run):
        assert len(prism_run.queries) == 4
        for record in prism_run.queries:
            assert record.pool_size > 0
            assert 0.0 <= record.precision <= 1.0
            assert 0.0 <= record.needed_coverage <= 1.0
            assert len(record.selected_doc_ids) <= 10

    def test_timeline_captured(self, prism_run):
        assert prism_run.timeline
        assert prism_run.timeline[0].time >= 0.0

    def test_total_is_sum_of_stages(self, prism_run):
        record = prism_run.queries[0]
        assert record.total_seconds == pytest.approx(
            record.sparse_seconds
            + record.dense_seconds
            + record.rerank_seconds
            + record.first_token_seconds
        )


class TestValidation:
    def test_invalid_k(self, corpus):
        with pytest.raises(ValueError):
            RagPipeline(corpus, QWEN3_0_6B, "apple_m2", k=0)

    def test_empty_queries(self, corpus):
        pipeline = RagPipeline(corpus, QWEN3_0_6B, "apple_m2")
        with pytest.raises(ValueError):
            pipeline.run([])
