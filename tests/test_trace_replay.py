"""Trace record/replay determinism across serving tiers (DESIGN.md §10).

Two guarantees pinned here:

* **Zero perturbation** — attaching an event log changes nothing: a
  scenario served with no sink produces byte-identical selections and
  identical completion instants to the observed run.
* **Replay fidelity** — re-executing a recorded trace (workload
  reconstructed from the log itself, stack from the header) yields an
  event-identical log and byte-identical selections, including through
  a mid-stream replica crash with failover, hedging and autoscaling.
"""

import json

import pytest

from repro.core.trace import (
    TRACE_SCHEMA,
    TRACE_VERSION,
    TraceSpec,
    compare_logs,
    parse_trace,
    record_trace,
    render_trace,
    replay_trace,
    requests_from_events,
    run_trace,
)
from repro.harness.traces import SCENARIOS, build_scenario

TIER_SCENARIOS = ("engine", "device", "fleet")
ALL_SCENARIOS = tuple(sorted(SCENARIOS))


@pytest.fixture(scope="module")
def recorded():
    """Scenario name → (spec, requests, run, rendered JSONL)."""
    out = {}
    for name in ALL_SCENARIOS:
        spec, requests = build_scenario(name, quick=True)
        run, text = record_trace(spec, requests)
        out[name] = (spec, requests, run, text)
    return out


class TestZeroPerturbation:
    """No sink attached → byte-identical behaviour (§10)."""

    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_unobserved_run_identical(self, recorded, name):
        spec, requests, observed, _ = recorded[name]
        bare = run_trace(spec, requests, observe=False)
        assert len(bare.log) == 0, "observe=False must attach no sink"
        assert bare.selections == observed.selections
        assert [r.finish for r in bare.responses] == [
            r.finish for r in observed.responses
        ]
        assert [r.status for r in bare.responses] == [
            r.status for r in observed.responses
        ]


class TestReplay:
    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_replay_event_identical(self, recorded, name):
        _, _, run, text = recorded[name]
        replayed, report = replay_trace(text=text)
        assert report.event_identical, (
            f"first divergence at {report.first_divergence}: "
            f"{report.recorded_line!r} != {report.replayed_line!r}"
        )
        assert replayed.selections == run.selections

    @pytest.mark.parametrize("name", TIER_SCENARIOS)
    def test_workload_roundtrip(self, recorded, name):
        """trace-tier admits carry the complete workload."""
        spec, requests, run, _ = recorded[name]
        rebuilt = requests_from_events(run.log)
        assert rebuilt == list(requests)

    def test_crash_mid_stream_replays(self, recorded):
        """The §9 stack under a mid-stream replica crash is replayable."""
        spec, _, run, text = recorded["resilience"]
        kinds = {e.kind for e in run.log}
        # The crash genuinely fired mid-stream and the fleet recovered.
        assert "fault" in kinds and "failover" in kinds
        faults = [e for e in run.log if e.kind == "fault"]
        assert any(e.data["fault"] == "replica_crash" for e in faults)
        assert all(r.ok for r in run.responses), "failover must recover every request"
        replayed, report = replay_trace(text=text)
        assert report.event_identical
        assert replayed.selections == run.selections

    def test_replay_detects_divergence(self, recorded):
        """A tampered log is reported at its first divergent line."""
        spec, _, run, _ = recorded["device"]
        lines = run.log.lines()
        tampered = list(lines)
        payload = json.loads(tampered[3])
        payload["at"] += 1.0
        tampered[3] = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        report = compare_logs(tampered, lines)
        assert not report.event_identical
        assert report.first_divergence == 3

    def test_truncated_log_reported_as_divergent(self, recorded):
        _, _, run, _ = recorded["engine"]
        lines = run.log.lines()
        report = compare_logs(lines, lines[:-2])
        assert not report.event_identical
        assert report.first_divergence == len(lines) - 2


class TestArtifact:
    def test_header_shape(self, recorded):
        _, _, _, text = recorded["fleet"]
        header = json.loads(text.splitlines()[0])
        assert header["schema"] == TRACE_SCHEMA
        assert header["version"] == TRACE_VERSION
        assert header["spec"]["tier"] == "fleet"

    def test_render_parse_roundtrip(self, recorded):
        spec, _, run, text = recorded["device"]
        parsed_spec, events, lines = parse_trace(text)
        assert parsed_spec == spec
        assert lines == run.log.lines()
        assert [e.line() for e in events] == lines
        assert render_trace(parsed_spec, run.log) == text

    def test_bad_schema_rejected(self):
        with pytest.raises(ValueError, match="not a repro.trace"):
            parse_trace('{"schema":"other","version":1}\n')
        with pytest.raises(ValueError, match="empty trace"):
            parse_trace("")

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError, match="unknown trace tier"):
            TraceSpec(tier="warp")
