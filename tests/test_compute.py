"""Unit tests for the roofline compute model."""

import pytest

from repro.device.compute import ComputeModel


@pytest.fixture
def model():
    return ComputeModel(
        flops_per_second=1e12,
        mem_bandwidth=1e11,
        kernel_overhead=1e-6,
        quant_compute_overhead=1.5,
    )


class TestValidation:
    def test_rejects_nonpositive_flops(self):
        with pytest.raises(ValueError):
            ComputeModel(flops_per_second=0, mem_bandwidth=1e9)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            ComputeModel(flops_per_second=1e12, mem_bandwidth=0)

    def test_rejects_negative_overhead(self):
        with pytest.raises(ValueError):
            ComputeModel(flops_per_second=1e12, mem_bandwidth=1e9, kernel_overhead=-1e-6)

    def test_rejects_quant_speedup(self):
        # Quant overhead models extra dequantization work; < 1 would
        # mean quantization magically speeds up compute.
        with pytest.raises(ValueError):
            ComputeModel(flops_per_second=1e12, mem_bandwidth=1e9, quant_compute_overhead=0.9)


class TestRoofline:
    def test_compute_bound_kernel(self, model):
        # 1e12 FLOPs at 1e12 FLOPS = 1s; traffic negligible.
        assert model.op_time(1e12, 1e3) == pytest.approx(1.0 + 1e-6)

    def test_memory_bound_kernel(self, model):
        # 1e11 bytes at 1e11 B/s = 1s; compute negligible.
        assert model.op_time(1e3, 1e11) == pytest.approx(1.0 + 1e-6)

    def test_max_not_sum(self, model):
        # Equal compute and traffic time: the roofline takes the max.
        t = model.op_time(1e12, 1e11)
        assert t == pytest.approx(1.0 + 1e-6)

    def test_zero_work_costs_overhead(self, model):
        assert model.op_time(0.0) == pytest.approx(1e-6)

    def test_negative_inputs_rejected(self, model):
        with pytest.raises(ValueError):
            model.op_time(-1.0)
        with pytest.raises(ValueError):
            model.op_time(1.0, -1.0)


class TestQuantOverhead:
    def test_quant_slows_compute_bound_kernels(self, model):
        base = model.op_time(1e12, quantized=False)
        quant = model.op_time(1e12, quantized=True)
        assert quant == pytest.approx((base - 1e-6) * 1.5 + 1e-6)

    def test_quant_does_not_slow_memory_bound_kernels(self, model):
        # Memory-bound time is unchanged: only the compute side carries
        # the dequantization penalty.
        base = model.op_time(1e3, 1e11, quantized=False)
        quant = model.op_time(1e3, 1e11, quantized=True)
        assert quant == pytest.approx(base)
