"""Tests for tenant-aware fair admission (DESIGN.md §13)."""

import numpy as np
import pytest

from repro.core.config import PrismConfig
from repro.core.events import EventLog
from repro.core.fleet import FleetConfig, FleetService
from repro.core.tenancy import (
    SLO_CLASSES,
    FairAdmission,
    SLOClass,
    TenancyConfig,
    TenantPolicy,
    TokenBucket,
)
from repro.data.datasets import get_dataset
from repro.data.workloads import build_batch
from repro.device.platforms import get_profile
from repro.harness.runner import shared_model, shared_tokenizer
from repro.model.zoo import QWEN3_0_6B


@pytest.fixture(scope="module")
def batches():
    tokenizer = shared_tokenizer(QWEN3_0_6B)
    queries = get_dataset("wikipedia").queries(8, 8)
    return [build_batch(q, tokenizer, QWEN3_0_6B.max_seq_len) for q in queries]


def make_fleet(tenancy, num_replicas=1, event_log=None, **fleet_kwargs):
    return FleetService.homogeneous(
        shared_model(QWEN3_0_6B),
        get_profile("nvidia_5070"),
        num_replicas,
        fleet_config=FleetConfig(**fleet_kwargs),
        config=PrismConfig(numerics=False),
        tenancy=tenancy,
        event_log=event_log,
    )


class TestValidation:
    def test_slo_classes_closed(self):
        assert set(SLO_CLASSES) == {"interactive", "batch", "best_effort"}

    def test_bad_shed_bound(self):
        with pytest.raises(ValueError):
            SLOClass(name="x", priority=0, deadline_s=None, shed_bound=1.5, weight=1.0)

    def test_bad_class_weight(self):
        with pytest.raises(ValueError):
            SLOClass(name="x", priority=0, deadline_s=None, shed_bound=0.5, weight=0.0)

    def test_unknown_slo(self):
        with pytest.raises(ValueError):
            TenantPolicy(slo="platinum")

    def test_burst_below_one_rejected(self):
        # burst >= 1 underpins the starvation-freedom guarantee: the
        # first request must always find a token.
        with pytest.raises(ValueError):
            TenantPolicy(burst=0.5)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            TenantPolicy(rate=-1.0)

    def test_bad_queue_cap(self):
        with pytest.raises(ValueError):
            TenancyConfig(max_tenant_queue=0)

    def test_policy_fallback(self):
        config = TenancyConfig(
            policies={"a": TenantPolicy(slo="interactive")},
            default=TenantPolicy(slo="batch"),
        )
        assert config.policy_for("a").slo == "interactive"
        assert config.policy_for("stranger").slo == "batch"
        assert config.policy_for(None).slo == "batch"


class TestTokenBucket:
    def test_starts_full_and_burst_bounds_admissions(self):
        bucket = TokenBucket(rate=2.0, burst=3.0)
        # A burst of simultaneous requests: only `burst` admitted.
        admitted = sum(bucket.try_take(0.0) for _ in range(10))
        assert admitted == 3

    def test_admissions_over_window_bounded_by_rate_plus_burst(self):
        rate, burst, horizon = 5.0, 2.0, 4.0
        bucket = TokenBucket(rate=rate, burst=burst)
        rng = np.random.default_rng(0)
        arrivals = np.sort(rng.uniform(0.0, horizon, size=200))
        admitted = sum(bucket.try_take(float(t)) for t in arrivals)
        assert admitted <= burst + rate * horizon + 1e-9

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=2.0)
        assert bucket.try_take(0.0)
        bucket.refill(10.0)
        assert bucket.tokens == pytest.approx(2.0)

    def test_unlimited_rate_never_denies(self):
        bucket = TokenBucket(rate=None, burst=1.0)
        assert all(bucket.try_take(0.0) for _ in range(50))
        assert bucket.debt == 0.0

    def test_debt_tracks_spent_burst(self):
        bucket = TokenBucket(rate=1.0, burst=4.0)
        bucket.try_take(0.0)
        bucket.try_take(0.0)
        assert bucket.debt == pytest.approx(2.0)


class _Queued:
    """Minimal stand-in for a queued FleetRequest."""

    def __init__(self, request_id, tenant):
        self.request_id = request_id
        self.tenant = tenant


class TestFairQueueing:
    def _drain_order(self, weights, rounds=120):
        """Admit `rounds` requests per tenant, flush one at a time."""
        config = TenancyConfig(
            policies={
                name: TenantPolicy(slo="best_effort", weight=weight)
                for name, weight in weights.items()
            }
        )
        admission = FairAdmission(config)
        queue = []
        rid = 0
        for _ in range(rounds):
            for name in weights:
                assert admission.admit(name, rid, 0.0) is None
                queue.append(_Queued(rid, name))
                rid += 1
        order = []
        while queue:
            queue.sort(key=admission.order_key)
            head, queue = queue[0], queue[1:]
            admission.on_flush([head])
            order.append(head.tenant)
        return order

    def test_weighted_share_convergence(self):
        # Under sustained backlog, each tenant's share of the first K
        # dispatches converges to its weight share (SFQ property).
        weights = {"heavy": 3.0, "light": 1.0}
        order = self._drain_order(weights)
        window = order[:80]
        heavy_share = window.count("heavy") / len(window)
        assert heavy_share == pytest.approx(0.75, abs=0.05)

    def test_equal_weights_interleave(self):
        order = self._drain_order({"a": 1.0, "b": 1.0})
        window = order[:40]
        assert abs(window.count("a") - window.count("b")) <= 1

    def test_work_conservation(self):
        # SFQ never idles while backlog exists: draining the queue
        # dispatches every admitted request exactly once.
        order = self._drain_order({"a": 5.0, "b": 1.0}, rounds=30)
        assert len(order) == 60
        assert order.count("a") == 30 and order.count("b") == 30

    def test_starvation_free_under_heavy_neighbour(self):
        # Even a 100:1 weight disparity serves the light tenant early:
        # its first request's start tag is 0, the global minimum.
        order = self._drain_order({"heavy": 100.0, "light": 1.0}, rounds=50)
        assert "light" in order[:2]

    def test_queue_cap_sheds_with_detail(self):
        config = TenancyConfig(max_tenant_queue=2)
        admission = FairAdmission(config)
        assert admission.admit("t", 0, 0.0) is None
        assert admission.admit("t", 1, 0.0) is None
        assert admission.admit("t", 2, 0.0) == "queue_limit"
        assert admission.shed_counts["queue_limit"] == 1

    def test_rate_limit_detail(self):
        config = TenancyConfig(default=TenantPolicy(rate=0.0, burst=1.0))
        admission = FairAdmission(config)
        assert admission.admit("t", 0, 0.0) is None
        assert admission.admit("t", 1, 0.0) == "rate_limit"
        assert admission.shed_counts["rate_limit"] == 1

    def test_note_queued_keeps_original_tag(self):
        admission = FairAdmission(TenancyConfig())
        admission.admit("t", 0, 0.0)
        tag = admission.order_key(_Queued(0, "t"))
        admission.note_queued("t", 0)  # retry re-enters the queue
        assert admission.order_key(_Queued(0, "t")) == tag


class TestFleetIntegration:
    def test_work_conserving_all_admitted_complete(self, batches):
        # Unlimited buckets: every submitted request is admitted and
        # the drain completes all of them — admission never loses work.
        fleet = make_fleet(TenancyConfig(), max_batch=4)
        for index, batch in enumerate(batches):
            fleet.submit_request(batch, 2, at=index * 0.005, tenant=f"t{index % 3}")
        outcomes = fleet.drain()
        assert len(outcomes) == len(batches)
        stats = fleet.stats()
        assert sum(t.completed for t in stats.tenants.values()) == len(batches)
        assert not stats.starved_tenants
        assert not stats.shed_bound_violations

    def test_rate_limited_tenant_sheds_and_stats_roll_up(self, batches):
        tenancy = TenancyConfig(
            policies={"greedy": TenantPolicy(rate=0.0, burst=1.0)},
        )
        fleet = make_fleet(tenancy, max_batch=4)
        for index, batch in enumerate(batches[:6]):
            fleet.submit_request(batch, 2, at=index * 0.001, tenant="greedy")
        outcomes = fleet.drain()
        assert len(outcomes) == 1  # the burst token
        stats = fleet.stats()
        greedy = stats.tenants["greedy"]
        assert greedy.submitted == 6
        assert greedy.completed == 1
        assert greedy.shed == 5
        assert greedy.shed_rate == pytest.approx(5 / 6)
        # Completed once: never starved, and its drop records say why.
        assert not stats.starved_tenants
        assert all(d.reason == "shed" for d in fleet.dropped_requests)
        assert all(d.detail == "rate_limit" for d in fleet.dropped_requests)
        assert all(d.tenant == "greedy" for d in fleet.dropped_requests)

    def test_admit_and_shed_events_carry_tenant_ids(self, batches):
        log = EventLog()
        tenancy = TenancyConfig(
            policies={"capped": TenantPolicy(rate=0.0, burst=1.0)},
        )
        fleet = make_fleet(tenancy, event_log=log, max_batch=2)
        fleet.submit_request(batches[0], 2, at=0.0, tenant="capped")
        fleet.submit_request(batches[1], 2, at=0.001, tenant="capped")
        fleet.submit_request(batches[2], 2, at=0.002, tenant="free")
        fleet.drain()
        admits = [e for e in log if e.kind == "admit"]
        sheds = [e for e in log if e.kind == "shed"]
        assert {e.tenant for e in admits} == {"capped", "free"}
        assert [e.tenant for e in sheds] == ["capped"]
        completes = [e for e in log if e.kind == "complete"]
        assert {e.tenant for e in completes} == {"capped", "free"}

    def test_zero_completion_tenant_renders_dash(self, batches):
        from repro.harness.reporting import ms

        tenancy = TenancyConfig(
            policies={"starved": TenantPolicy(rate=0.0, burst=1.0)},
            max_tenant_queue=1,
        )
        fleet = make_fleet(tenancy, max_batch=2)
        # Both requests land before the drain; the queue cap sheds the
        # second, the bucket admits exactly one.
        fleet.submit_request(batches[0], 2, at=0.0, tenant="quiet")
        fleet.drain()
        stats = fleet.stats()
        # A tenant known to the admission plane but with nothing
        # completed must render "-", not crash (the PR 6/8 convention).
        quiet = stats.tenants["quiet"]
        assert quiet.p50_latency is not None
        ghost = fleet._admission.state("ghost")  # registered, no traffic
        stats = fleet.stats()
        assert stats.tenants["ghost"].p50_latency is None
        assert stats.tenants["ghost"].p99_latency is None
        assert ms(stats.tenants["ghost"].p50_latency) == "-"
        assert stats.tenants["ghost"].shed_rate == 0.0

    def test_tenancy_disabled_is_structurally_off(self, batches):
        fleet = make_fleet(None)
        assert fleet._admission is None
        fleet.submit_request(batches[0], 2)
        outcomes = fleet.drain()
        assert outcomes[0].tenant is None
        assert fleet.stats().tenants == {}


class TestRequestApiThreading:
    def test_selection_request_tenant_flows_to_response(self, batches):
        from repro.core.api import FleetServer, SelectionRequest, serve_all

        fleet = make_fleet(TenancyConfig())
        responses = serve_all(
            FleetServer(fleet),
            [
                SelectionRequest(batch=batches[0], k=2, request_id="a", tenant="acme"),
                SelectionRequest(batch=batches[1], k=2, request_id="b"),
            ],
        )
        by_id = {r.request_id: r for r in responses}
        assert by_id["a"].tenant == "acme"
        assert by_id["b"].tenant is None

    def test_metadata_tenant_shim_warns_and_promotes(self, batches):
        from repro.core.api import SelectionRequest

        with pytest.warns(DeprecationWarning, match="metadata"):
            request = SelectionRequest(
                batch=batches[0], k=2, metadata={"tenant": "legacy"}
            )
        assert request.tenant == "legacy"

    def test_explicit_tenant_wins_over_metadata(self, batches):
        import warnings

        from repro.core.api import SelectionRequest

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            request = SelectionRequest(
                batch=batches[0], k=2, tenant="first", metadata={"tenant": "legacy"}
            )
        assert request.tenant == "first"
