"""Unit tests for PrismConfig."""

import pytest

from repro.core.config import PrismConfig


class TestValidation:
    def test_defaults_valid(self):
        config = PrismConfig()
        assert config.pruning_enabled
        assert config.layer_streaming
        assert config.chunked_execution
        assert config.embedding_cache

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            PrismConfig(dispersion_threshold=-0.1)

    def test_negative_min_layers_rejected(self):
        with pytest.raises(ValueError):
            PrismConfig(min_layers_before_pruning=-1)

    def test_bad_hidden_offload_rejected(self):
        with pytest.raises(ValueError):
            PrismConfig(hidden_offload="sometimes")

    def test_cache_fraction_bounds(self):
        with pytest.raises(ValueError):
            PrismConfig(embedding_cache_fraction=0.0)
        with pytest.raises(ValueError):
            PrismConfig(embedding_cache_fraction=1.5)
        PrismConfig(embedding_cache_fraction=1.0)  # inclusive upper bound

    def test_budgets_positive(self):
        with pytest.raises(ValueError):
            PrismConfig(chunk_memory_budget=0)
        with pytest.raises(ValueError):
            PrismConfig(hidden_memory_budget=-1)

    def test_max_clusters_at_least_two(self):
        with pytest.raises(ValueError):
            PrismConfig(max_clusters=1)


class TestConstructors:
    def test_with_threshold(self):
        config = PrismConfig().with_threshold(0.7)
        assert config.dispersion_threshold == 0.7

    def test_with_threshold_preserves_other_fields(self):
        base = PrismConfig(embedding_cache=False)
        assert not base.with_threshold(0.5).embedding_cache

    def test_quant_constructor(self):
        assert PrismConfig.quant().quantized

    def test_full_has_everything_on(self):
        config = PrismConfig.full()
        assert config.pruning_enabled
        assert config.chunked_execution
        assert config.layer_streaming
        assert config.embedding_cache


class TestAblationLadder:
    """The Figure 16 configs switch techniques on one at a time."""

    def test_pruning_only(self):
        config = PrismConfig.ablation_pruning_only()
        assert config.pruning_enabled
        assert not config.chunked_execution
        assert not config.layer_streaming
        assert not config.embedding_cache

    def test_chunked_adds_chunking(self):
        config = PrismConfig.ablation_chunked()
        assert config.pruning_enabled and config.chunked_execution
        assert not config.layer_streaming and not config.embedding_cache

    def test_streaming_adds_streaming(self):
        config = PrismConfig.ablation_streaming()
        assert config.layer_streaming
        assert not config.embedding_cache

    def test_frozen(self):
        with pytest.raises(Exception):
            PrismConfig().dispersion_threshold = 0.9
