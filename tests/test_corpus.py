"""Unit tests for the synthetic topical corpus."""

import numpy as np
import pytest

from repro.retrieval.corpus import SyntheticCorpus


@pytest.fixture(scope="module")
def corpus():
    return SyntheticCorpus(num_docs=100, num_topics=10, words_per_doc=80)


class TestConstruction:
    def test_document_count(self, corpus):
        assert len(corpus) == 100

    def test_topics_round_robin(self, corpus):
        assert corpus.document(0).topic_id == 0
        assert corpus.document(13).topic_id == 3

    def test_deterministic(self):
        a = SyntheticCorpus(num_docs=30, num_topics=3, words_per_doc=40, seed=1)
        b = SyntheticCorpus(num_docs=30, num_topics=3, words_per_doc=40, seed=1)
        assert a.document(7).words == b.document(7).words

    def test_seeds_vary_content(self):
        a = SyntheticCorpus(num_docs=30, num_topics=3, words_per_doc=40, seed=1)
        b = SyntheticCorpus(num_docs=30, num_topics=3, words_per_doc=40, seed=2)
        assert a.document(7).words != b.document(7).words

    def test_purity_bounds(self, corpus):
        for doc in corpus.documents:
            assert 0.10 <= doc.purity <= 0.80

    def test_documents_contain_topic_words(self, corpus):
        doc = corpus.document(0)
        topical = [w for w in doc.words if w.startswith("t000")]
        assert len(topical) / len(doc.words) == pytest.approx(doc.purity, abs=0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticCorpus(num_docs=0)
        with pytest.raises(ValueError):
            SyntheticCorpus(num_docs=5, num_topics=10)

    def test_doc_id_bounds(self, corpus):
        with pytest.raises(IndexError):
            corpus.document(100)
        with pytest.raises(IndexError):
            corpus.document(-1)


class TestTopicRelations:
    def test_same(self, corpus):
        assert corpus.topic_relation(3, 3) == "same"

    def test_adjacent_on_ring(self, corpus):
        assert corpus.topic_relation(3, 4) == "adjacent"
        assert corpus.topic_relation(0, 9) == "adjacent"  # ring wrap

    def test_unrelated(self, corpus):
        assert corpus.topic_relation(0, 5) == "unrelated"


class TestQueries:
    def test_ground_truth_shapes(self, corpus):
        query = corpus.make_query(0, topic_id=2)
        assert query.relevance.shape == (100,)
        assert query.labels.shape == (100,)

    def test_labels_are_same_topic_docs(self, corpus):
        query = corpus.make_query(0, topic_id=2)
        for doc in corpus.documents:
            assert query.labels[doc.doc_id] == (doc.topic_id == 2)

    def test_relevance_tiers_by_relation(self, corpus):
        query = corpus.make_query(1, topic_id=4)
        same = [query.relevance[d.doc_id] for d in corpus.documents if d.topic_id == 4]
        adjacent = [
            query.relevance[d.doc_id]
            for d in corpus.documents
            if corpus.topic_relation(4, d.topic_id) == "adjacent"
        ]
        unrelated = [
            query.relevance[d.doc_id]
            for d in corpus.documents
            if corpus.topic_relation(4, d.topic_id) == "unrelated"
        ]
        assert np.mean(same) > np.mean(adjacent) > np.mean(unrelated)

    def test_purity_modulates_perceived_relevance(self, corpus):
        query = corpus.make_query(2, topic_id=0)
        same_topic = [d for d in corpus.documents if d.topic_id == 0]
        high = [d for d in same_topic if d.purity > 0.5]
        low = [d for d in same_topic if d.purity < 0.3]
        if high and low:
            assert np.mean([query.relevance[d.doc_id] for d in high]) > np.mean(
                [query.relevance[d.doc_id] for d in low]
            )

    def test_needed_docs_are_high_purity_same_topic(self, corpus):
        query = corpus.make_query(3, topic_id=5)
        assert len(query.needed) == 2
        purities = sorted(d.purity for d in corpus.documents if d.topic_id == 5)
        for doc_id in query.needed:
            doc = corpus.document(doc_id)
            assert doc.topic_id == 5
            assert doc.purity >= purities[-3]

    def test_query_words_topical(self, corpus):
        query = corpus.make_query(4, topic_id=7)
        assert all(w.startswith("t007") for w in query.words)

    def test_deterministic(self, corpus):
        a = corpus.make_query(5, topic_id=1)
        b = corpus.make_query(5, topic_id=1)
        assert np.array_equal(a.relevance, b.relevance)
        assert a.words == b.words

    def test_make_queries_cycles_topics(self, corpus):
        queries = corpus.make_queries(12)
        assert [q.topic_id for q in queries[:3]] == [0, 1, 2]
        assert queries[10].topic_id == 0

    def test_invalid_topic_rejected(self, corpus):
        with pytest.raises(ValueError):
            corpus.make_query(0, topic_id=10)

    def test_invalid_query_count_rejected(self, corpus):
        with pytest.raises(ValueError):
            corpus.make_queries(0)

    def test_relevant_ids_helper(self, corpus):
        query = corpus.make_query(6, topic_id=3)
        assert set(query.relevant_ids().tolist()) == {
            d.doc_id for d in corpus.documents if d.topic_id == 3
        }
