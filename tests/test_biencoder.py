"""Unit tests for the bi-encoder embedder."""

import numpy as np
import pytest

from repro.retrieval.biencoder import BiEncoder, EmbeddingModelSpec
from repro.retrieval.corpus import SyntheticCorpus


@pytest.fixture
def encoder():
    return BiEncoder(dim=32)


class TestEmbedding:
    def test_unit_norm(self, encoder):
        vec = encoder.embed(("alpha", "beta", "gamma"))
        assert np.linalg.norm(vec) == pytest.approx(1.0)

    def test_deterministic(self, encoder):
        a = encoder.embed(("alpha", "beta"))
        b = encoder.embed(("alpha", "beta"))
        assert np.array_equal(a, b)

    def test_deterministic_across_instances(self):
        a = BiEncoder(dim=32).embed(("word",))
        b = BiEncoder(dim=32).embed(("word",))
        assert np.array_equal(a, b)

    def test_empty_text_zero_vector(self, encoder):
        assert np.array_equal(encoder.embed(()), np.zeros(32))

    def test_order_insensitive_up_to_weighting(self, encoder):
        a = encoder.embed(("x", "y"))
        b = encoder.embed(("y", "x"))
        assert np.allclose(a, b)

    def test_batch_shape(self, encoder):
        out = encoder.embed_batch([("a",), ("b", "c")])
        assert out.shape == (2, 32)

    def test_empty_batch(self, encoder):
        assert encoder.embed_batch([]).shape == (0, 32)

    def test_invalid_dim_rejected(self):
        with pytest.raises(ValueError):
            BiEncoder(dim=0)


class TestSimilarityGeometry:
    def test_identical_texts_similarity_one(self, encoder):
        vec = encoder.embed(("shared", "words", "here"))
        assert BiEncoder.similarity(vec, vec) == pytest.approx(1.0)

    def test_overlapping_texts_more_similar_than_disjoint(self, encoder):
        a = encoder.embed(("topic", "shared", "words"))
        b = encoder.embed(("topic", "shared", "other"))
        c = encoder.embed(("entirely", "different", "vocabulary"))
        assert BiEncoder.similarity(a, b) > BiEncoder.similarity(a, c)

    def test_disjoint_texts_near_orthogonal(self, encoder):
        rng_words_a = tuple(f"wa{i}" for i in range(20))
        rng_words_b = tuple(f"wb{i}" for i in range(20))
        sim = BiEncoder.similarity(encoder.embed(rng_words_a), encoder.embed(rng_words_b))
        assert abs(sim) < 0.45

    def test_zero_vector_similarity_zero(self, encoder):
        assert BiEncoder.similarity(np.zeros(32), np.ones(32)) == 0.0

    def test_same_topic_documents_cluster(self):
        corpus = SyntheticCorpus(num_docs=60, num_topics=3, words_per_doc=80)
        encoder = BiEncoder(dim=64)
        texts = [d.words for d in corpus.documents]
        encoder.fit(texts)
        vectors = encoder.embed_batch(texts)
        same = cross = []
        same, cross = [], []
        for i in range(0, 30):
            for j in range(i + 1, 30):
                sim = float(vectors[i] @ vectors[j])
                if corpus.documents[i].topic_id == corpus.documents[j].topic_id:
                    same.append(sim)
                else:
                    cross.append(sim)
        assert np.mean(same) > np.mean(cross)


class TestIDFWeighting:
    def test_fit_records_document_frequencies(self, encoder):
        encoder.fit([("common", "a"), ("common", "b"), ("rare", "c")])
        assert encoder.idf("rare") > encoder.idf("common")

    def test_unfitted_idf_is_neutral(self, encoder):
        assert encoder.idf("anything") == 1.0

    def test_rare_words_dominate_embeddings(self):
        encoder = BiEncoder(dim=64)
        docs = [("common", f"filler{i}") for i in range(50)] + [("common", "rare")]
        encoder.fit(docs)
        query = encoder.embed(("rare",))
        mixed = encoder.embed(("common", "rare"))
        common_only = encoder.embed(("common",))
        assert BiEncoder.similarity(query, mixed) > BiEncoder.similarity(query, common_only)


class TestCostModel:
    def test_spec_params_positive(self):
        spec = EmbeddingModelSpec()
        assert spec.params() > 1e8
        assert spec.weight_bytes() == spec.params() * 2

    def test_prefill_flops_linear_in_tokens(self):
        spec = EmbeddingModelSpec()
        assert spec.prefill_flops(20) == pytest.approx(2 * spec.prefill_flops(10))

    def test_negative_tokens_rejected(self):
        with pytest.raises(ValueError):
            EmbeddingModelSpec().prefill_flops(-1)

    def test_encoder_exposes_cost(self, encoder):
        assert encoder.embed_cost_flops(10) > 0
