"""Unit tests for dispersion-threshold auto-calibration (§4.1)."""

import pytest

from repro.core.calibration import ThresholdCalibrator
from repro.core.config import PrismConfig
from repro.data.datasets import get_dataset
from repro.data.workloads import build_batch
from repro.device.platforms import get_profile
from repro.harness.runner import shared_model, shared_tokenizer
from repro.model.zoo import QWEN3_0_6B


@pytest.fixture(scope="module")
def sample_batches():
    tokenizer = shared_tokenizer(QWEN3_0_6B)
    queries = get_dataset("wikipedia").queries(3, 20)
    return [build_batch(q, tokenizer, QWEN3_0_6B.max_seq_len) for q in queries]


@pytest.fixture
def calibrator():
    return ThresholdCalibrator(
        shared_model(QWEN3_0_6B),
        get_profile("nvidia_5070"),
        precision_target=0.9,
        step=0.1,
        max_rounds=8,
    )


class TestValidation:
    def test_precision_target_bounds(self):
        model = shared_model(QWEN3_0_6B)
        profile = get_profile("nvidia_5070")
        with pytest.raises(ValueError):
            ThresholdCalibrator(model, profile, precision_target=0.0)
        with pytest.raises(ValueError):
            ThresholdCalibrator(model, profile, precision_target=1.1)

    def test_step_positive(self):
        with pytest.raises(ValueError):
            ThresholdCalibrator(
                shared_model(QWEN3_0_6B), get_profile("nvidia_5070"), step=0.0
            )

    def test_empty_samples_rejected(self, calibrator):
        with pytest.raises(ValueError):
            calibrator.calibrate([], k=10)


class TestCalibration:
    def test_final_threshold_meets_target(self, calibrator, sample_batches):
        result = calibrator.calibrate(
            sample_batches, k=10, base_config=PrismConfig(numerics=False)
        )
        # Re-evaluate at the tuned threshold: must meet the target.
        config = PrismConfig(numerics=False).with_threshold(result.threshold)
        precision = calibrator._sampled_precision(
            sample_batches,
            [calibrator._ground_truth(b, 10, config) for b in sample_batches],
            10,
            config,
        )
        assert precision >= calibrator.precision_target

    def test_walks_down_while_meeting_target(self, calibrator, sample_batches):
        result = calibrator.calibrate(
            sample_batches,
            k=10,
            base_config=PrismConfig(numerics=False),
            initial_threshold=0.8,
        )
        # Starting conservative, the loop should find a lower threshold.
        assert result.threshold <= 0.8
        assert result.rounds >= 1

    def test_history_records_every_round(self, calibrator, sample_batches):
        result = calibrator.calibrate(
            sample_batches, k=10, base_config=PrismConfig(numerics=False)
        )
        assert len(result.history) == result.rounds
        for step in result.history:
            assert 0.0 <= step.sampled_precision <= 1.0

    def test_bounded_by_max_rounds(self, sample_batches):
        calibrator = ThresholdCalibrator(
            shared_model(QWEN3_0_6B),
            get_profile("nvidia_5070"),
            precision_target=0.9,
            step=0.02,
            max_rounds=3,
        )
        result = calibrator.calibrate(
            sample_batches, k=10, base_config=PrismConfig(numerics=False)
        )
        assert result.rounds <= 3
