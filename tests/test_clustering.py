"""Unit tests for 1-D k-means and statistically-distinct cluster selection."""

import numpy as np
import pytest

from repro.core.clustering import Clustering, cluster_scores, kmeans_1d


def tiers(rng, centers, spread, per_tier):
    return np.concatenate([rng.normal(c, spread, size=per_tier) for c in centers])


class TestKMeans1D:
    def test_deterministic(self):
        scores = np.random.default_rng(0).uniform(0, 1, 30)
        a = kmeans_1d(scores, 3)
        b = kmeans_1d(scores, 3)
        assert np.array_equal(a.labels, b.labels)
        assert np.array_equal(a.centers, b.centers)

    def test_centers_descending(self):
        scores = np.random.default_rng(1).uniform(0, 1, 40)
        clustering = kmeans_1d(scores, 4)
        assert (np.diff(clustering.centers) < 0).all()

    def test_cluster_zero_is_the_best_band(self):
        rng = np.random.default_rng(2)
        scores = tiers(rng, [0.9, 0.1], 0.02, 10)
        clustering = kmeans_1d(scores, 2)
        top = clustering.members(0)
        assert (scores[top] > 0.5).all()

    def test_labels_partition_all_points(self):
        scores = np.random.default_rng(3).uniform(0, 1, 25)
        clustering = kmeans_1d(scores, 3)
        assert clustering.sizes().sum() == 25
        assert (clustering.sizes() > 0).all()

    def test_k_capped_by_unique_values(self):
        scores = np.array([0.5, 0.5, 0.5, 0.7])
        clustering = kmeans_1d(scores, 4)
        assert clustering.num_clusters <= 2

    def test_single_cluster(self):
        scores = np.array([0.4, 0.5, 0.6])
        clustering = kmeans_1d(scores, 1)
        assert clustering.num_clusters == 1
        assert clustering.centers[0] == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            kmeans_1d(np.array([]), 2)

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            kmeans_1d(np.zeros((3, 2)), 2)

    def test_inertia_nonincreasing_in_k(self):
        scores = np.random.default_rng(4).uniform(0, 1, 50)
        inertias = [kmeans_1d(scores, k).inertia for k in (1, 2, 3, 4)]
        assert all(b <= a + 1e-12 for a, b in zip(inertias, inertias[1:]))

    def test_perfect_tiers_zero_inertia(self):
        scores = np.array([0.2, 0.2, 0.8, 0.8])
        assert kmeans_1d(scores, 2).inertia == pytest.approx(0.0)


class TestClusterScores:
    def test_recovers_obvious_tiers(self):
        rng = np.random.default_rng(5)
        scores = tiers(rng, [0.85, 0.5, 0.15], 0.015, 7)
        clustering = cluster_scores(scores)
        assert clustering.num_clusters == 3

    def test_unimodal_noise_stays_one_cluster(self):
        """The separation guard: a Gaussian blob must not split —
        early-layer scores would otherwise create phantom clusters
        (the cluster-γ ≈ 1 premise of Figure 2b)."""
        for seed in range(10):
            scores = np.random.default_rng(seed).normal(0.5, 0.05, 20)
            assert cluster_scores(scores).num_clusters == 1

    def test_two_well_separated_tiers(self):
        rng = np.random.default_rng(6)
        scores = tiers(rng, [0.8, 0.2], 0.03, 10)
        assert cluster_scores(scores).num_clusters == 2

    def test_max_clusters_respected(self):
        rng = np.random.default_rng(7)
        scores = tiers(rng, [0.1, 0.3, 0.5, 0.7, 0.9], 0.005, 5)
        clustering = cluster_scores(scores, max_clusters=3)
        assert clustering.num_clusters <= 3

    def test_single_point(self):
        clustering = cluster_scores(np.array([0.5]))
        assert clustering.num_clusters == 1

    def test_identical_scores(self):
        clustering = cluster_scores(np.full(10, 0.5))
        assert clustering.num_clusters == 1
        assert clustering.inertia == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            cluster_scores(np.array([]))

    def test_members_accessor(self):
        rng = np.random.default_rng(8)
        scores = tiers(rng, [0.9, 0.1], 0.01, 5)
        clustering = cluster_scores(scores)
        members = clustering.members(0)
        assert (scores[members] > 0.5).all()
        assert members.size == 5


class TestClusteringDataclass:
    def test_num_clusters(self):
        c = Clustering(
            labels=np.array([0, 0, 1]), centers=np.array([0.8, 0.2]), inertia=0.0
        )
        assert c.num_clusters == 2

    def test_sizes(self):
        c = Clustering(
            labels=np.array([0, 0, 1]), centers=np.array([0.8, 0.2]), inertia=0.0
        )
        assert c.sizes().tolist() == [2, 1]
