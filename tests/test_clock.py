"""Unit tests for the virtual clock."""

import pytest

from repro.device.clock import ClockError, VirtualClock


class TestConstruction:
    def test_starts_at_zero_by_default(self):
        assert VirtualClock().now == 0.0

    def test_custom_start(self):
        assert VirtualClock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ClockError):
            VirtualClock(-1.0)


class TestAdvance:
    def test_advance_moves_forward(self):
        clock = VirtualClock()
        assert clock.advance(1.5) == 1.5
        assert clock.now == 1.5

    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(1.0)
        clock.advance(2.0)
        assert clock.now == 3.0

    def test_zero_advance_is_noop(self):
        clock = VirtualClock(2.0)
        clock.advance(0.0)
        assert clock.now == 2.0

    def test_negative_advance_rejected(self):
        clock = VirtualClock()
        with pytest.raises(ClockError):
            clock.advance(-0.1)


class TestAdvanceTo:
    def test_advance_to_future(self):
        clock = VirtualClock()
        clock.advance_to(4.0)
        assert clock.now == 4.0

    def test_advance_to_past_is_noop(self):
        clock = VirtualClock(10.0)
        clock.advance_to(3.0)
        assert clock.now == 10.0

    def test_advance_to_now_is_noop(self):
        clock = VirtualClock(7.0)
        clock.advance_to(7.0)
        assert clock.now == 7.0

    def test_returns_new_time(self):
        clock = VirtualClock()
        assert clock.advance_to(2.5) == 2.5


class TestReset:
    def test_reset_to_zero(self):
        clock = VirtualClock()
        clock.advance(9.0)
        clock.reset()
        assert clock.now == 0.0

    def test_reset_to_value(self):
        clock = VirtualClock()
        clock.reset(3.0)
        assert clock.now == 3.0

    def test_negative_reset_rejected(self):
        with pytest.raises(ClockError):
            VirtualClock().reset(-2.0)
