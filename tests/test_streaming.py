"""Unit tests for overlapped layer streaming (§4.2)."""

import pytest

from repro.core.streaming import LayerStreamer
from repro.device.executor import DeviceExecutor
from repro.device.platforms import NVIDIA_5070
from repro.model.weights import WeightStore
from repro.model.zoo import QWEN3_0_6B


@pytest.fixture
def executor():
    return DeviceExecutor(NVIDIA_5070.create())


@pytest.fixture
def store():
    return WeightStore(QWEN3_0_6B)


@pytest.fixture
def streamer(store, executor):
    return LayerStreamer(store, executor)


class TestLifecycle:
    def test_begin_pass_prefetches_first_layers(self, streamer, executor):
        streamer.begin_pass()
        tags = [r.tag for r in executor.device.ssd.request_log]
        assert any("layer000" in t for t in tags)
        assert any("layer001" in t for t in tags)

    def test_begin_pass_twice_rejected(self, streamer):
        streamer.begin_pass()
        with pytest.raises(RuntimeError):
            streamer.begin_pass()

    def test_acquire_before_begin_rejected(self, streamer):
        with pytest.raises(RuntimeError):
            streamer.acquire(0)

    def test_finish_pass_releases_everything(self, streamer, executor):
        streamer.begin_pass()
        streamer.acquire(0)
        streamer.finish_pass()
        assert executor.device.memory.in_use == 0
        assert streamer.resident_layers == set()

    def test_finish_allows_new_pass(self, streamer):
        streamer.begin_pass()
        streamer.finish_pass()
        streamer.begin_pass()  # no exception
        streamer.finish_pass()

    def test_lookahead_validated(self, store, executor):
        with pytest.raises(ValueError):
            LayerStreamer(store, executor, lookahead=0)


class TestDoubleBuffering:
    def test_at_most_two_layers_resident(self, streamer, executor):
        """§4.2: one buffer computing, one prefetching — never more."""
        streamer.begin_pass()
        max_resident = 0
        for layer in range(QWEN3_0_6B.num_layers):
            streamer.acquire(layer)
            weights_bytes = executor.device.memory.in_use_by_category("weights")
            max_resident = max(max_resident, weights_bytes)
            executor.compute(1e9)
            streamer.advance(layer)
        streamer.finish_pass()
        assert max_resident <= 2 * streamer.store.layer_nbytes(0)

    def test_advance_frees_the_layer(self, streamer, executor):
        streamer.begin_pass()
        streamer.acquire(0)
        streamer.advance(0)
        assert 0 not in streamer.resident_layers
        assert not executor.device.memory.is_live("stream/" + streamer.store.layer_tag(0))

    def test_advance_unknown_layer_is_noop(self, streamer):
        streamer.begin_pass()
        streamer.advance(17)  # never acquired — no exception
        streamer.finish_pass()


class TestLookaheadRefill:
    def test_miss_refills_full_window(self, store, executor):
        """After an on-demand miss the *whole* lookahead window must be
        re-primed — topping up one slot would leave a lookahead>1
        pipeline running at depth 1 for the rest of the pass."""
        streamer = LayerStreamer(store, executor, lookahead=2)
        streamer.begin_pass()  # layers 0..2 in flight
        streamer.acquire(5)  # miss: nothing near layer 5 was prefetched
        window = streamer.resident_layers | streamer._inflight
        assert {6, 7} <= window, f"window not refilled after miss: {window}"

    def test_steady_state_depth_preserved(self, store, executor):
        """In steady state the refill is a no-op beyond the far edge:
        exactly lookahead layers stay ahead of the compute frontier."""
        streamer = LayerStreamer(store, executor, lookahead=2)
        streamer.begin_pass()
        for layer in range(6):
            streamer.acquire(layer)
            ahead = {
                la
                for la in (streamer.resident_layers | streamer._inflight)
                if la > layer
            }
            assert ahead == {layer + 1, layer + 2}
            streamer.advance(layer)
        streamer.finish_pass()


class TestTightMemoryBudget:
    """LayerStreamer against a hard MemoryTracker budget: the §4.2
    promise is that streaming needs only ~two layer buffers."""

    def test_full_pass_fits_in_two_buffers(self, store, executor):
        executor.device.memory.budget_bytes = int(2.2 * store.layer_nbytes(0))
        streamer = LayerStreamer(store, executor)
        streamer.begin_pass()
        for layer in range(QWEN3_0_6B.num_layers):
            streamer.acquire(layer)
            executor.compute(1e9)
            streamer.advance(layer)
        streamer.finish_pass()
        assert executor.device.memory.in_use == 0

    def test_budget_below_double_buffer_raises(self, store, executor):
        from repro.device.memory import OutOfMemoryError

        executor.device.memory.budget_bytes = int(1.5 * store.layer_nbytes(0))
        streamer = LayerStreamer(store, executor)
        with pytest.raises(OutOfMemoryError):
            streamer.begin_pass()

    def test_oom_mid_pass_leaves_accounting_consistent(self, store, executor):
        """An OOM on a refill prefetch must not corrupt the tracker:
        fail_pass tears the pipeline down to zero bytes."""
        from repro.device.memory import OutOfMemoryError

        memory = executor.device.memory
        streamer = LayerStreamer(store, executor)
        streamer.begin_pass()  # layers 0 and 1 committed
        streamer.acquire(0)
        # The budget collapses under concurrent load mid-pass.
        memory.budget_bytes = int(1.5 * store.layer_nbytes(0))
        streamer.advance(0)
        with pytest.raises(OutOfMemoryError):
            streamer.acquire(1)  # the refill of layer 2 cannot fit
        streamer.fail_pass()
        assert memory.in_use == 0


class TestOverlap:
    def test_long_compute_hides_all_loads(self, store, executor):
        """When every compute window exceeds the load time, the whole
        pass stalls only on the very first layer (§3.2's overlap window)."""
        streamer = LayerStreamer(store, executor)
        load_time = executor.device.ssd.model.read_time(store.layer_nbytes(0))
        streamer.begin_pass()
        streamer.acquire(0)
        first_stall = executor.io_stall_seconds
        for layer in range(QWEN3_0_6B.num_layers):
            if layer > 0:
                streamer.acquire(layer)
            # Compute window comfortably longer than one layer load.
            executor.compute(2 * load_time * executor.device.compute.flops_per_second)
            streamer.advance(layer)
        streamer.finish_pass()
        assert executor.io_stall_seconds == pytest.approx(first_stall)

    def test_short_compute_stalls_on_io(self, store, executor):
        """When compute windows are tiny (post-pruning), the residual
        waits surface as I/O stalls — Figure 16's 81 ms effect."""
        streamer = LayerStreamer(store, executor)
        streamer.begin_pass()
        for layer in range(8):
            streamer.acquire(layer)
            executor.compute(1e6)  # ~0.1 µs of compute
            streamer.advance(layer)
        streamer.finish_pass()
        load_time = executor.device.ssd.model.read_time(store.layer_nbytes(0))
        assert executor.io_stall_seconds > 4 * load_time

    def test_skipping_ahead_after_early_termination(self, store, executor):
        """Early-terminated passes clean up in-flight prefetches."""
        streamer = LayerStreamer(store, executor)
        streamer.begin_pass()
        streamer.acquire(0)
        streamer.advance(0)
        streamer.finish_pass()  # layers 1.. may still be in flight
        assert executor.device.memory.in_use == 0
