"""Unit tests for overlapped layer streaming (§4.2)."""

import pytest

from repro.core.streaming import LayerStreamer
from repro.device.executor import DeviceExecutor
from repro.device.platforms import NVIDIA_5070
from repro.model.weights import WeightStore
from repro.model.zoo import QWEN3_0_6B


@pytest.fixture
def executor():
    return DeviceExecutor(NVIDIA_5070.create())


@pytest.fixture
def store():
    return WeightStore(QWEN3_0_6B)


@pytest.fixture
def streamer(store, executor):
    return LayerStreamer(store, executor)


class TestLifecycle:
    def test_begin_pass_prefetches_first_layers(self, streamer, executor):
        streamer.begin_pass()
        tags = [r.tag for r in executor.device.ssd.request_log]
        assert any("layer000" in t for t in tags)
        assert any("layer001" in t for t in tags)

    def test_begin_pass_twice_rejected(self, streamer):
        streamer.begin_pass()
        with pytest.raises(RuntimeError):
            streamer.begin_pass()

    def test_acquire_before_begin_rejected(self, streamer):
        with pytest.raises(RuntimeError):
            streamer.acquire(0)

    def test_finish_pass_releases_everything(self, streamer, executor):
        streamer.begin_pass()
        streamer.acquire(0)
        streamer.finish_pass()
        assert executor.device.memory.in_use == 0
        assert streamer.resident_layers == set()

    def test_finish_allows_new_pass(self, streamer):
        streamer.begin_pass()
        streamer.finish_pass()
        streamer.begin_pass()  # no exception
        streamer.finish_pass()

    def test_lookahead_validated(self, store, executor):
        with pytest.raises(ValueError):
            LayerStreamer(store, executor, lookahead=0)


class TestDoubleBuffering:
    def test_at_most_two_layers_resident(self, streamer, executor):
        """§4.2: one buffer computing, one prefetching — never more."""
        streamer.begin_pass()
        max_resident = 0
        for layer in range(QWEN3_0_6B.num_layers):
            streamer.acquire(layer)
            weights_bytes = executor.device.memory.in_use_by_category("weights")
            max_resident = max(max_resident, weights_bytes)
            executor.compute(1e9)
            streamer.advance(layer)
        streamer.finish_pass()
        assert max_resident <= 2 * streamer.store.layer_nbytes(0)

    def test_advance_frees_the_layer(self, streamer, executor):
        streamer.begin_pass()
        streamer.acquire(0)
        streamer.advance(0)
        assert 0 not in streamer.resident_layers
        assert not executor.device.memory.is_live("stream/" + streamer.store.layer_tag(0))

    def test_advance_unknown_layer_is_noop(self, streamer):
        streamer.begin_pass()
        streamer.advance(17)  # never acquired — no exception
        streamer.finish_pass()


class TestOverlap:
    def test_long_compute_hides_all_loads(self, store, executor):
        """When every compute window exceeds the load time, the whole
        pass stalls only on the very first layer (§3.2's overlap window)."""
        streamer = LayerStreamer(store, executor)
        load_time = executor.device.ssd.model.read_time(store.layer_nbytes(0))
        streamer.begin_pass()
        streamer.acquire(0)
        first_stall = executor.io_stall_seconds
        for layer in range(QWEN3_0_6B.num_layers):
            if layer > 0:
                streamer.acquire(layer)
            # Compute window comfortably longer than one layer load.
            executor.compute(2 * load_time * executor.device.compute.flops_per_second)
            streamer.advance(layer)
        streamer.finish_pass()
        assert executor.io_stall_seconds == pytest.approx(first_stall)

    def test_short_compute_stalls_on_io(self, store, executor):
        """When compute windows are tiny (post-pruning), the residual
        waits surface as I/O stalls — Figure 16's 81 ms effect."""
        streamer = LayerStreamer(store, executor)
        streamer.begin_pass()
        for layer in range(8):
            streamer.acquire(layer)
            executor.compute(1e6)  # ~0.1 µs of compute
            streamer.advance(layer)
        streamer.finish_pass()
        load_time = executor.device.ssd.model.read_time(store.layer_nbytes(0))
        assert executor.io_stall_seconds > 4 * load_time

    def test_skipping_ahead_after_early_termination(self, store, executor):
        """Early-terminated passes clean up in-flight prefetches."""
        streamer = LayerStreamer(store, executor)
        streamer.begin_pass()
        streamer.acquire(0)
        streamer.advance(0)
        streamer.finish_pass()  # layers 1.. may still be in flight
        assert executor.device.memory.in_use == 0
