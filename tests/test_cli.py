"""Tests for the experiment CLI."""

import json

import pytest

from repro.harness.cli import _EXPERIMENTS, build_parser, build_serve_parser, main, run_one


class TestParser:
    def test_known_experiments_parse(self):
        parser = build_parser()
        args = parser.parse_args(["fig16", "--quick"])
        assert args.experiment == "fig16"
        assert args.quick

    def test_unknown_experiment_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["fig99"])

    def test_every_paper_artifact_registered(self):
        expected = {
            "fig1",
            "fig2",
            "table3",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12-13",
            "fig14-15",
            "fig16",
        }
        # Every paper artifact must stay registered; extension studies
        # (e.g. the DESIGN.md §5 fleet layer) may ride alongside.
        assert set(_EXPERIMENTS) >= expected

    def test_fleet_extension_registered(self):
        assert "fleet" in _EXPERIMENTS

    def test_schedule_extension_registered(self):
        assert "schedule" in _EXPERIMENTS

    def test_shared_weights_extension_registered(self):
        assert "shared_weights" in _EXPERIMENTS

    def test_deadline_extension_registered(self):
        assert "deadline" in _EXPERIMENTS

    def test_resilience_extension_registered(self):
        assert "resilience" in _EXPERIMENTS

    def test_cache_extension_registered(self):
        assert "cache" in _EXPERIMENTS

    def test_serve_parser_tiers(self):
        parser = build_serve_parser()
        args = parser.parse_args(["requests.json", "--tier", "fleet"])
        assert args.tier == "fleet"
        with pytest.raises(SystemExit):
            parser.parse_args(["requests.json", "--tier", "warehouse"])


class TestExecution:
    def test_list_mode(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig16" in out and "table3" in out

    def test_quick_run_renders(self):
        text = run_one("fig16", quick=True, out=None)
        assert "ablation" in text
        assert "wall]" in text

    def test_out_dir_written(self, tmp_path):
        run_one("fig2", quick=True, out=tmp_path)
        assert (tmp_path / "fig2.txt").exists()
        assert "cluster_gamma" in (tmp_path / "fig2.txt").read_text()

    def test_main_runs_single_experiment(self, capsys):
        assert main(["fig2", "--quick"]) == 0
        assert "gamma" in capsys.readouterr().out

    def test_cache_run_prints_plane_stats(self, capsys):
        """``cli cache`` renders the DataPlaneStats taxonomy (§12)."""
        assert main(["cache", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "memo hits" in out
        assert "speedup (cached vs uncached)" in out
        assert "memo entries" in out
        assert "selections byte-identical: yes" in out


class TestServe:
    """The ``serve`` subcommand replays a request file through a tier."""

    def _request_file(self, tmp_path, entries):
        path = tmp_path / "requests.json"
        path.write_text(json.dumps(entries))
        return path

    CLEAN = [
        {"id": "fast", "k": 3, "num_candidates": 6, "priority": 0},
        {"id": "slow", "k": 3, "num_candidates": 6, "arrival": 0.05},
    ]
    #: The tight deadline expires behind the queue on the serial
    #: engine tier, so the request is shed.
    WITH_SHED = CLEAN + [
        {"id": "late", "k": 3, "num_candidates": 6, "deadline": 0.0005}
    ]

    @pytest.mark.parametrize("tier", ["engine", "device", "fleet"])
    def test_serve_prints_provenance(self, tier, tmp_path, capsys):
        path = self._request_file(tmp_path, self.CLEAN)
        assert main(["serve", str(path), "--tier", tier]) == 0
        out = capsys.readouterr().out
        assert "SelectionResponse provenance" in out
        for request_id in ("fast", "slow"):
            assert request_id in out
        assert tier in out

    @pytest.mark.parametrize("tier", ["engine", "device", "fleet"])
    def test_serve_clean_run_exits_zero(self, tier, tmp_path, capsys):
        path = self._request_file(tmp_path, self.CLEAN)
        assert main(["serve", str(path), "--tier", tier]) == 0
        assert "did not complete" not in capsys.readouterr().out

    def test_serve_shed_exits_nonzero_with_summary(self, tmp_path, capsys):
        """Satellite: an unclean replay exits non-zero and prints a
        one-line summary count instead of silently exiting 0."""
        path = self._request_file(tmp_path, self.WITH_SHED)
        assert main(["serve", str(path), "--tier", "engine"]) == 1
        out = capsys.readouterr().out
        assert "shed" in out
        assert (
            "serve: 1 of 3 requests did not complete "
            "(shed=1, cancelled=0, failed=0)" in out
        )

    def test_serve_cancelled_exits_nonzero(self, tmp_path, capsys):
        entries = self.CLEAN + [
            {"id": "bail", "k": 3, "num_candidates": 6, "cancel_at": 0.0}
        ]
        path = self._request_file(tmp_path, entries)
        assert main(["serve", str(path), "--tier", "engine"]) == 1
        assert "cancelled=1" in capsys.readouterr().out

    def test_serve_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("[]")
        with pytest.raises(SystemExit):
            main(["serve", str(path)])


class TestTrace:
    """The ``trace`` subcommand: record / replay / tail / summary."""

    @pytest.fixture(scope="class")
    def trace_file(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("traces") / "device.jsonl"
        assert (
            main(["trace", "record", str(path), "--scenario", "device", "--quick"])
            == 0
        )
        return path

    def test_record_writes_versioned_jsonl(self, trace_file):
        header = json.loads(trace_file.read_text().splitlines()[0])
        assert header["schema"] == "repro.trace"
        assert header["version"] == 1

    def test_record_unknown_scenario_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["trace", "record", str(tmp_path / "x.jsonl"), "--scenario", "warp"])

    def test_replay_clean_exits_zero(self, trace_file, capsys):
        assert main(["trace", "replay", str(trace_file)]) == 0
        assert "event-identical" in capsys.readouterr().out

    def test_replay_divergence_exits_nonzero(self, trace_file, tmp_path, capsys):
        """A corrupted event line fails the replay with the divergent
        line named — the CI gate the §10 acceptance requires."""
        lines = trace_file.read_text().splitlines()
        payload = json.loads(lines[5])
        payload["at"] += 0.5
        lines[5] = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        tampered = tmp_path / "tampered.jsonl"
        tampered.write_text("\n".join(lines) + "\n")
        assert main(["trace", "replay", str(tampered)]) == 1
        out = capsys.readouterr().out
        assert "DIVERGED at event 4" in out
        assert "recorded:" in out and "replayed:" in out

    def test_tail_prints_events(self, trace_file, capsys):
        assert main(["trace", "tail", str(trace_file), "--last", "5"]) == 0
        out = capsys.readouterr().out
        assert "t=" in out
        assert "(5 of" in out

    def test_tail_filters(self, trace_file, capsys):
        assert main(["trace", "tail", str(trace_file), "--kind", "fetch"]) == 0
        out = capsys.readouterr().out
        assert "fetch" in out
        assert "/complete" not in out

    def test_summary_renders_dashboard(self, trace_file, capsys):
        assert main(["trace", "summary", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "trace summary" in out
        for column in ("tier", "admitted", "completed", "shed", "p99"):
            assert column in out
        assert "faults=" in out and "hedges=" in out
