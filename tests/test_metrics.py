"""Unit tests for the evaluation metrics."""

import numpy as np
import pytest

from repro.core.metrics import (
    cluster_gamma,
    goodman_kruskal_gamma,
    precision_at_k,
    top_k_overlap,
)


class TestPrecisionAtK:
    def test_all_relevant_selected(self):
        labels = np.array([True, True, False, False])
        assert precision_at_k(np.array([0, 1]), labels, 2) == 1.0

    def test_none_relevant_selected(self):
        labels = np.array([True, True, False, False])
        assert precision_at_k(np.array([2, 3]), labels, 2) == 0.0

    def test_partial(self):
        labels = np.array([True, False, True, False])
        assert precision_at_k(np.array([0, 1]), labels, 2) == 0.5

    def test_denominator_capped_by_num_relevant(self):
        """§6.1: when ground truth < K, divide by the ground truth."""
        labels = np.array([True, False, False, False, False])
        assert precision_at_k(np.array([0, 1, 2]), labels, 3) == 1.0

    def test_no_relevant_items_is_vacuous_success(self):
        labels = np.zeros(4, dtype=bool)
        assert precision_at_k(np.array([0, 1]), labels, 2) == 1.0

    def test_only_first_k_considered(self):
        labels = np.array([False, False, True])
        assert precision_at_k(np.array([0, 1, 2]), labels, 2) == 0.0

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            precision_at_k(np.array([0]), np.array([True]), 0)


class TestGoodmanKruskalGamma:
    def test_identical_rankings(self):
        scores = np.array([0.1, 0.5, 0.9, 0.3])
        assert goodman_kruskal_gamma(scores, scores) == 1.0

    def test_reversed_rankings(self):
        scores = np.array([0.1, 0.5, 0.9])
        assert goodman_kruskal_gamma(scores, -scores) == -1.0

    def test_monotone_transform_invariant(self):
        a = np.array([0.1, 0.4, 0.7, 0.9])
        assert goodman_kruskal_gamma(a, np.exp(a)) == 1.0

    def test_partial_agreement_in_open_interval(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        b = np.array([1.0, 2.0, 4.0, 3.0])
        gamma = goodman_kruskal_gamma(a, b)
        assert -1.0 < gamma < 1.0

    def test_ties_excluded(self):
        a = np.array([1.0, 1.0, 2.0])
        b = np.array([1.0, 2.0, 3.0])
        # Pair (0,1) tied in a → excluded; remaining pairs concordant.
        assert goodman_kruskal_gamma(a, b) == 1.0

    def test_all_ties_vacuous(self):
        a = np.full(4, 0.5)
        assert goodman_kruskal_gamma(a, np.arange(4.0)) == 1.0

    def test_single_element(self):
        assert goodman_kruskal_gamma(np.array([1.0]), np.array([2.0])) == 1.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            goodman_kruskal_gamma(np.array([1.0]), np.array([1.0, 2.0]))

    def test_symmetry(self):
        rng = np.random.default_rng(0)
        a, b = rng.random(10), rng.random(10)
        assert goodman_kruskal_gamma(a, b) == pytest.approx(goodman_kruskal_gamma(b, a))


class TestClusterGamma:
    def test_within_cluster_pairs_ignored(self):
        """Order flips inside a cluster must not lower cluster-γ."""
        intermediate = np.array([0.9, 0.8, 0.2, 0.1])
        final = np.array([0.8, 0.9, 0.1, 0.2])  # flipped within both clusters
        clusters = np.array([0, 0, 1, 1])
        assert cluster_gamma(intermediate, final, clusters) == 1.0

    def test_inter_cluster_flip_detected(self):
        intermediate = np.array([0.9, 0.1])
        final = np.array([0.1, 0.9])
        clusters = np.array([0, 1])
        assert cluster_gamma(intermediate, final, clusters) == -1.0

    def test_matches_gamma_when_all_clusters_distinct(self):
        rng = np.random.default_rng(1)
        a, b = rng.random(8), rng.random(8)
        clusters = np.arange(8)
        assert cluster_gamma(a, b, clusters) == pytest.approx(goodman_kruskal_gamma(a, b))

    def test_single_cluster_vacuous(self):
        a = np.array([0.1, 0.9, 0.5])
        assert cluster_gamma(a, -a, np.zeros(3, dtype=int)) == 1.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            cluster_gamma(np.array([1.0]), np.array([1.0]), np.array([0, 1]))


class TestTopKOverlap:
    def test_identical_sets(self):
        assert top_k_overlap(np.array([1, 2, 3]), np.array([3, 2, 1]), 3) == 1.0

    def test_disjoint_sets(self):
        assert top_k_overlap(np.array([1, 2]), np.array([3, 4]), 2) == 0.0

    def test_partial_overlap(self):
        assert top_k_overlap(np.array([1, 2]), np.array([2, 3]), 2) == 0.5

    def test_only_first_k_compared(self):
        assert top_k_overlap(np.array([1, 9]), np.array([1, 8]), 1) == 1.0

    def test_empty_sets_vacuous(self):
        assert top_k_overlap(np.array([]), np.array([]), 3) == 1.0

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            top_k_overlap(np.array([1]), np.array([1]), 0)
