"""Tests for the unified request-centric serving API (DESIGN.md §8).

One ``SelectionRequest`` flows unchanged through every tier:
``EngineServer`` (direct), ``DeviceServer`` (scheduler + service
loop), ``FleetServer`` (batched, routed replicas).  The intent fields
are real — deadlines shed at admission, cancellation closes in-flight
tasks at layer boundaries — and the legacy ``rerank``/``select``/
``submit`` entry points survive as shims emitting DeprecationWarning.
"""

import numpy as np
import pytest

import repro.core as core
from repro.core.api import (
    REQUEST_CANCELLED,
    REQUEST_SHED,
    DeviceServer,
    EngineServer,
    FleetServer,
    SelectionRequest,
    Server,
    serve_all,
)
from repro.core.config import PrismConfig
from repro.core.engine import PrismEngine
from repro.core.fleet import FleetConfig, FleetService
from repro.core.scheduler import LANE_INTERACTIVE, DeviceScheduler, SchedulerConfig
from repro.core.service import SemanticSelectionService
from repro.data.datasets import get_dataset
from repro.data.workloads import build_batch
from repro.device.platforms import get_profile
from repro.harness.runner import shared_model, shared_tokenizer
from repro.model.zoo import QWEN3_0_6B


def make_batch(num_candidates=10, query_idx=0):
    query = get_dataset("wikipedia").queries(query_idx + 1, num_candidates)[query_idx]
    tokenizer = shared_tokenizer(QWEN3_0_6B)
    return build_batch(query, tokenizer, QWEN3_0_6B.max_seq_len)


def make_engine(config=None):
    device = get_profile("nvidia_5070").create()
    engine = PrismEngine(
        shared_model(QWEN3_0_6B), device, config or PrismConfig(numerics=False)
    )
    engine.prepare()
    return engine


def make_service(max_concurrency=2, shared_weights=False, sample_rate=0.25):
    return SemanticSelectionService(
        shared_model(QWEN3_0_6B),
        get_profile("nvidia_5070"),
        config=PrismConfig(numerics=False),
        max_concurrency=max_concurrency,
        shared_weights=shared_weights,
        sample_rate=sample_rate,
    )


def make_fleet(num_replicas=2, **kwargs):
    return FleetService.homogeneous(
        shared_model(QWEN3_0_6B),
        get_profile("nvidia_5070"),
        num_replicas,
        config=PrismConfig(numerics=False),
        **kwargs,
    )


def wave(n=3, k=3, **overrides):
    return [
        SelectionRequest(
            batch=make_batch(query_idx=i), k=k, request_id=f"q{i}", **overrides
        )
        for i in range(n)
    ]


class TestSelectionRequest:
    def test_validation(self):
        batch = make_batch()
        with pytest.raises(ValueError):
            SelectionRequest(batch=batch, k=0)
        with pytest.raises(ValueError):
            SelectionRequest(batch=batch, k=3, priority=-1)
        with pytest.raises(ValueError):
            SelectionRequest(batch=batch, k=3, arrival=-0.1)
        with pytest.raises(ValueError):
            SelectionRequest(batch=batch, k=3, deadline=0.0)

    def test_metadata_echo(self):
        request = SelectionRequest(batch=make_batch(), k=3, metadata={"app": "rag"})
        assert request.metadata["app"] == "rag"


class TestPublicSurface:
    def test_every_all_name_imports(self):
        """Satellite: every name in repro.core.__all__ resolves."""
        for name in core.__all__:
            assert hasattr(core, name), f"repro.core.__all__ exports missing {name!r}"

    def test_api_types_in_all(self):
        for name in (
            "SelectionRequest",
            "SelectionResponse",
            "Server",
            "EngineServer",
            "DeviceServer",
            "FleetServer",
            "RequestHandle",
            "serve_all",
        ):
            assert name in core.__all__

    def test_adapters_satisfy_server_protocol(self):
        assert isinstance(EngineServer(make_engine()), Server)
        assert isinstance(DeviceServer(make_service()), Server)
        assert isinstance(FleetServer(make_fleet()), Server)


class TestCrossTierEquivalence:
    def test_same_requests_identical_selections_on_all_tiers(self):
        """Acceptance bar: one request list, three tiers, byte-identical
        selection indices (solo, no shedding)."""
        results = {}
        for name, server in (
            ("engine", EngineServer(make_engine())),
            ("device", DeviceServer(make_service(max_concurrency=1), policy="fifo")),
            ("fleet", FleetServer(make_fleet(num_replicas=1))),
        ):
            responses = serve_all(server, wave())
            assert all(r.ok for r in responses)
            results[name] = {
                r.request_id: r.result.top_indices.tobytes() for r in responses
            }
        assert results["engine"] == results["device"] == results["fleet"]

    def test_interleaved_device_tier_matches_engine_tier(self):
        engine_responses = serve_all(EngineServer(make_engine()), wave(4))
        device_responses = serve_all(
            DeviceServer(make_service(max_concurrency=4), policy="round_robin"), wave(4)
        )
        def sel(responses):
            return {r.request_id: tuple(r.result.top_indices.tolist()) for r in responses}

        assert sel(engine_responses) == sel(device_responses)

    def test_provenance_identifies_tier(self):
        for tier, server in (
            ("engine", EngineServer(make_engine())),
            ("device", DeviceServer(make_service())),
            ("fleet", FleetServer(make_fleet())),
        ):
            (response,) = serve_all(server, wave(1))
            assert response.tier == tier
        assert response.replica is not None  # fleet names its replica


class TestRequestHandle:
    def test_result_drains_on_demand(self):
        server = EngineServer(make_engine())
        handle = server.submit(SelectionRequest(batch=make_batch(), k=3))
        assert not handle.done
        response = handle.result()
        assert handle.done and response.ok

    def test_auto_ids_assigned(self):
        server = EngineServer(make_engine())
        h0 = server.submit(SelectionRequest(batch=make_batch(), k=3))
        h1 = server.submit(SelectionRequest(batch=make_batch(), k=3))
        assert h0.request_id != h1.request_id

    def test_duplicate_id_rejected(self):
        server = EngineServer(make_engine())
        server.submit(SelectionRequest(batch=make_batch(), k=3, request_id="dup"))
        with pytest.raises(ValueError, match="duplicate"):
            server.submit(SelectionRequest(batch=make_batch(), k=3, request_id="dup"))

    def test_auto_id_skips_taken_ids(self):
        server = EngineServer(make_engine())
        server.submit(SelectionRequest(batch=make_batch(), k=3, request_id="r0"))
        handle = server.submit(SelectionRequest(batch=make_batch(), k=3))
        assert handle.request_id != "r0"

    def test_response_retention_bounded(self):
        server = EngineServer(make_engine())
        server.max_retained = 2
        handles = [
            server.submit(SelectionRequest(batch=make_batch(query_idx=i), k=3))
            for i in range(3)
        ]
        server.drain()
        assert len(server._responses) == 2
        assert not handles[0].done  # oldest evicted
        assert handles[1].done and handles[2].done

    def test_cancel_before_drain_never_starts(self):
        engine = make_engine()
        server = EngineServer(engine)
        counter = engine._request_counter
        handle = server.submit(SelectionRequest(batch=make_batch(), k=3))
        assert handle.cancel()
        response = handle.result()
        assert response.status == REQUEST_CANCELLED and response.result is None
        assert engine._request_counter == counter  # never reached the engine

    def test_cancel_after_completion_returns_false(self):
        server = EngineServer(make_engine())
        handle = server.submit(SelectionRequest(batch=make_batch(), k=3))
        handle.result()
        assert not handle.cancel()


class TestDeadlines:
    def test_shed_request_never_reaches_engine(self):
        """Satellite: a shed request is dropped at admission — the
        engine's request counter never moves for it."""
        service = make_service(max_concurrency=1)
        engine = service.engine
        server = DeviceServer(service, policy="fifo")
        counter = engine._request_counter
        requests = [
            SelectionRequest(batch=make_batch(query_idx=0), k=3, request_id="head"),
            # Far tighter than one pass's service time: expires while
            # the head request holds the serial device.
            SelectionRequest(
                batch=make_batch(query_idx=1), k=3, request_id="doomed", deadline=1e-4
            ),
        ]
        responses = {r.request_id: r for r in serve_all(server, requests)}
        assert responses["head"].ok
        assert responses["doomed"].status == REQUEST_SHED
        assert responses["doomed"].result is None
        assert responses["doomed"].deadline_met is False
        assert engine._request_counter == counter + 1  # head only
        assert service.stats.requests_dropped == 1

    def test_deadline_met_reported(self):
        server = EngineServer(make_engine())
        (response,) = serve_all(
            server, [SelectionRequest(batch=make_batch(), k=3, deadline=1e6)]
        )
        assert response.ok and response.deadline_met is True

    def test_edf_reorders_admission(self):
        """Two waiting requests, tightest deadline admitted first."""
        engine = make_engine()
        scheduler = DeviceScheduler(
            engine, SchedulerConfig(policy="fifo", max_concurrency=1, edf=True)
        )
        loose = scheduler.submit_request(make_batch(query_idx=0), 3, deadline=1e6)
        tight = scheduler.submit_request(make_batch(query_idx=1), 3, deadline=1.0)
        outcomes = scheduler.drain()
        assert [o.request_id for o in outcomes] == [tight, loose]

    def test_fleet_sheds_expired_deadline(self):
        fleet = make_fleet(num_replicas=1)
        server = FleetServer(fleet)
        requests = [
            SelectionRequest(batch=make_batch(query_idx=0), k=3, request_id="head"),
            SelectionRequest(
                batch=make_batch(query_idx=1), k=3, request_id="late", deadline=1e-4
            ),
        ]
        responses = {r.request_id: r for r in serve_all(server, requests)}
        assert responses["head"].ok
        assert responses["late"].status == REQUEST_SHED
        assert len(fleet.dropped_requests) == 1
        assert fleet.dropped_requests[0].client_id == "late"


class TestCancellation:
    def test_mid_pass_cancel_releases_plane_refcounts(self):
        """Satellite: a cancelled mid-pass request drops its PlanePass
        refcounts at the next layer boundary — no leaked layer buffers,
        and the surviving request completes normally."""
        service = make_service(max_concurrency=2, shared_weights=True)
        server = DeviceServer(service, policy="fusion")
        server.submit(SelectionRequest(batch=make_batch(query_idx=0), k=3, request_id="keep"))
        victim = server.submit(
            SelectionRequest(batch=make_batch(query_idx=1), k=3, request_id="kill")
        )
        victim.cancel(at=0.02)  # mid-pass on the virtual clock
        responses = {r.request_id: r for r in server.drain()}
        assert responses["keep"].ok
        assert responses["kill"].status == REQUEST_CANCELLED
        plane = service.engine.weight_plane
        assert plane is not None
        assert plane.open_passes == 0
        assert plane.resident_layers == set()
        assert all(count == 0 for count in plane._refcount.values())
        # The cancelled task actually started (it was not a pre-start
        # drop): its drop instant lies after the wave origin.
        assert responses["kill"].finish > responses["kill"].arrival

    def test_mid_pass_cancel_frees_private_stream_buffers(self):
        """Without the shared plane, a cancelled task's namespaced
        stream buffers are freed by the generator teardown."""
        service = make_service(max_concurrency=2)
        server = DeviceServer(service, policy="round_robin")
        server.submit(SelectionRequest(batch=make_batch(query_idx=0), k=3, request_id="keep"))
        victim = server.submit(
            SelectionRequest(batch=make_batch(query_idx=1), k=3, request_id="kill")
        )
        victim.cancel(at=0.02)
        responses = {r.request_id: r for r in server.drain()}
        assert responses["kill"].status == REQUEST_CANCELLED
        # Only the runtime base, classifier and embedding cache remain;
        # every per-request allocation (req{n}/... tags) is gone.
        live_tags = set(service.device.memory._live)
        assert not any(tag.startswith("req") for tag in live_tags), live_tags

    def test_engine_tier_mid_pass_cancel(self):
        engine = make_engine()
        server = EngineServer(engine)
        handle = server.submit(SelectionRequest(batch=make_batch(), k=3))
        handle.cancel(at=0.01)
        response = handle.result()
        assert response.status == REQUEST_CANCELLED
        assert response.start is not None  # it did start
        assert response.result is None

    def test_cancelled_request_not_sampled(self):
        service = make_service(max_concurrency=1, sample_rate=1.0)
        server = DeviceServer(service)
        handle = server.submit(SelectionRequest(batch=make_batch(), k=3))
        handle.cancel()
        server.drain()
        assert service.pending_samples == 0


class TestFleetCorrelation:
    def test_request_id_carried_end_to_end(self):
        """Satellite: FleetService outcomes correlate to submissions —
        the fleet-local id returned by submit_request matches the
        outcome, and the caller's client_id rides along."""
        fleet = make_fleet(num_replicas=2)
        batches = [make_batch(query_idx=i) for i in range(3)]
        fleet_ids = [
            fleet.submit_request(batch, 3, client_id=f"client-{i}")
            for i, batch in enumerate(batches)
        ]
        outcomes = fleet.drain()
        assert sorted(o.request_id for o in outcomes) == sorted(fleet_ids)
        by_fleet_id = {o.request_id: o for o in outcomes}
        for i, fleet_id in enumerate(fleet_ids):
            assert by_fleet_id[fleet_id].client_id == f"client-{i}"

    def test_fleet_server_echoes_request_ids(self):
        responses = serve_all(FleetServer(make_fleet()), wave(3))
        assert {r.request_id for r in responses} == {"q0", "q1", "q2"}

    def test_priority_reaches_intra_replica_scheduler(self):
        fleet = make_fleet(
            num_replicas=1,
            fleet_config=FleetConfig(intra_concurrency=2, intra_policy="priority"),
        )
        responses = serve_all(
            FleetServer(fleet),
            wave(2, priority=LANE_INTERACTIVE),
        )
        assert all(r.lane == LANE_INTERACTIVE for r in responses)


class TestDeprecationShims:
    def test_rerank_warns_and_matches(self):
        engine = make_engine()
        batch = make_batch()
        via_api = (
            EngineServer(engine)
            .submit(SelectionRequest(batch=batch, k=4))
            .result()
            .result
        )
        with pytest.warns(DeprecationWarning, match="rerank"):
            legacy = engine.rerank(batch, 4)
        np.testing.assert_array_equal(legacy.top_indices, via_api.top_indices)

    def test_select_warns(self):
        service = make_service()
        with pytest.warns(DeprecationWarning, match="select"):
            service.select(make_batch(), 3)

    def test_select_concurrent_warns(self):
        service = make_service()
        with pytest.warns(DeprecationWarning, match="select_concurrent"):
            outcomes = service.select_concurrent([(make_batch(), 3)])
        assert len(outcomes) == 1

    def test_scheduler_submit_warns(self):
        scheduler = DeviceScheduler(make_engine())
        with pytest.warns(DeprecationWarning, match="submit"):
            scheduler.submit(make_batch(), 3)

    def test_fleet_submit_warns(self):
        fleet = make_fleet(num_replicas=1)
        with pytest.warns(DeprecationWarning, match="submit"):
            fleet.submit(make_batch(), 3)


class TestResponseTiming:
    def test_latency_decomposition(self):
        service = make_service(max_concurrency=1)
        responses = serve_all(DeviceServer(service, policy="fifo"), wave(2))
        for response in responses:
            assert response.e2e_seconds >= response.service_seconds >= 0
            assert response.queue_seconds >= 0
            assert response.finish is not None and response.start is not None
            assert response.finish >= response.start >= response.arrival

    def test_fleet_serial_batch_service_times_are_per_request(self):
        """Requests served serially in one dispatched batch must report
        their own service span, not the whole batch's."""
        fleet = make_fleet(num_replicas=1, fleet_config=FleetConfig(max_batch=3))
        responses = serve_all(FleetServer(fleet), wave(3))
        assert all(r.ok for r in responses)
        total_service = sum(r.service_seconds for r in responses)
        makespan = max(r.finish for r in responses) - min(r.start for r in responses)
        # Serial execution: per-request service times tile the batch
        # window instead of each spanning it.
        assert total_service <= makespan * 1.01
        ordered = sorted(responses, key=lambda r: r.finish)
        for earlier, later in zip(ordered, ordered[1:]):
            assert later.start >= earlier.finish - 1e-9

    def test_threshold_provenance(self):
        service = make_service()
        (response,) = serve_all(DeviceServer(service), wave(1))
        assert response.threshold == pytest.approx(service.threshold)

    def test_fused_group_provenance(self):
        service = make_service(max_concurrency=2, shared_weights=True)
        responses = serve_all(DeviceServer(service, policy="fusion"), wave(2))
        groups = {r.request_id: r.fused_group for r in responses}
        # A gang admitted together crosses layer 0 back-to-back: both
        # requests' first steps land in the same fused group.
        assert groups["q0"] == groups["q1"] is not None
