"""Unit tests for progressive cluster pruning (§4.1)."""

import numpy as np
import pytest

from repro.core.pruning import ProgressiveClusterPruner, coefficient_of_variation


def tiers(rng, centers, spread, per_tier):
    return np.concatenate([rng.normal(c, spread, size=per_tier) for c in centers])


class TestCoefficientOfVariation:
    def test_formula(self):
        scores = np.array([1.0, 2.0, 3.0])
        assert coefficient_of_variation(scores) == pytest.approx(
            np.std(scores) / np.mean(scores)
        )

    def test_absolute_value_for_negative_mean(self):
        scores = np.array([-1.0, -2.0, -3.0])
        assert coefficient_of_variation(scores) > 0

    def test_zero_mean_gives_infinity(self):
        assert coefficient_of_variation(np.array([-1.0, 1.0])) == np.inf

    def test_constant_scores_zero(self):
        assert coefficient_of_variation(np.full(5, 0.7)) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            coefficient_of_variation(np.array([]))


class TestTrigger:
    def test_no_trigger_below_threshold(self):
        pruner = ProgressiveClusterPruner(dispersion_threshold=0.5)
        scores = np.random.default_rng(0).normal(0.5, 0.01, 20)  # CV ≈ 0.02
        decision = pruner.decide(scores, slots_remaining=5)
        assert not decision.triggered
        assert decision.cv < 0.5

    def test_trigger_above_threshold(self):
        pruner = ProgressiveClusterPruner(dispersion_threshold=0.1)
        scores = tiers(np.random.default_rng(1), [0.9, 0.1], 0.02, 10)
        decision = pruner.decide(scores, slots_remaining=5)
        assert decision.triggered

    def test_no_trigger_when_clusters_not_distinct(self):
        """High CV but unimodal: clustering yields one cluster, so
        nothing can be routed."""
        pruner = ProgressiveClusterPruner(dispersion_threshold=0.1)
        scores = np.random.default_rng(2).normal(0.2, 0.15, 20).clip(0.01, 0.99)
        decision = pruner.decide(scores, slots_remaining=5)
        if decision.clustering is not None and decision.clustering.num_clusters < 2:
            assert not decision.triggered

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            ProgressiveClusterPruner(dispersion_threshold=-0.1)

    def test_nonpositive_slots_rejected(self):
        pruner = ProgressiveClusterPruner(dispersion_threshold=0.1)
        with pytest.raises(ValueError):
            pruner.decide(np.array([0.5, 0.6]), slots_remaining=0)


class TestThreeWayRouting:
    @pytest.fixture
    def decision(self):
        # 5 clear winners, 5 mid (boundary), 10 losers; K = 7 → the
        # boundary cluster holds the 7th-ranked candidate.
        rng = np.random.default_rng(3)
        self.scores = np.concatenate(
            [
                rng.normal(0.9, 0.01, 5),
                rng.normal(0.55, 0.01, 5),
                rng.normal(0.1, 0.01, 10),
            ]
        )
        pruner = ProgressiveClusterPruner(dispersion_threshold=0.1)
        return pruner.decide(self.scores, slots_remaining=7)

    def test_partition_is_complete_and_disjoint(self, decision):
        routed = np.concatenate([decision.selected, decision.deferred, decision.dropped])
        assert sorted(routed.tolist()) == list(range(20))

    def test_winners_selected(self, decision):
        assert set(decision.selected.tolist()) == set(range(5))

    def test_boundary_cluster_deferred(self, decision):
        assert set(decision.deferred.tolist()) == set(range(5, 10))

    def test_losers_dropped(self, decision):
        assert set(decision.dropped.tolist()) == set(range(10, 20))

    def test_selected_ordered_best_first(self, decision):
        selected_scores = self.scores[decision.selected]
        assert (np.diff(selected_scores) <= 0).all()

    def test_pruned_count(self, decision):
        assert decision.pruned_count == 15


class TestTerminalCondition:
    def test_terminal_when_deferred_exactly_fills_slots(self):
        """§4.5's ending: selected + deferred == K stops the pass."""
        rng = np.random.default_rng(4)
        scores = np.concatenate(
            [rng.normal(0.9, 0.01, 2), rng.normal(0.55, 0.01, 3), rng.normal(0.1, 0.01, 15)]
        )
        pruner = ProgressiveClusterPruner(dispersion_threshold=0.1)
        decision = pruner.decide(scores, slots_remaining=5)
        assert decision.triggered
        assert decision.terminal
        assert decision.selected.size + decision.deferred.size == 5

    def test_terminal_deferred_sorted_best_first(self):
        rng = np.random.default_rng(5)
        scores = np.concatenate([rng.normal(0.7, 0.01, 5), rng.normal(0.1, 0.01, 15)])
        pruner = ProgressiveClusterPruner(dispersion_threshold=0.1)
        decision = pruner.decide(scores, slots_remaining=5)
        if decision.terminal:
            deferred_scores = scores[decision.deferred]
            assert (np.diff(deferred_scores) <= 0).all()

    def test_accept_all_when_survivors_fit_slots(self):
        pruner = ProgressiveClusterPruner(dispersion_threshold=0.9)
        scores = np.array([0.3, 0.8, 0.5])
        decision = pruner.decide(scores, slots_remaining=3)
        assert decision.triggered and decision.terminal
        assert decision.selected.tolist() == [1, 2, 0]  # best-first


class TestExactRankMode:
    def test_never_terminal(self):
        rng = np.random.default_rng(6)
        scores = np.concatenate([rng.normal(0.9, 0.01, 2), rng.normal(0.1, 0.01, 18)])
        pruner = ProgressiveClusterPruner(dispersion_threshold=0.1, exact_rank_mode=True)
        decision = pruner.decide(scores, slots_remaining=2)
        assert not decision.terminal

    def test_winners_fold_into_deferred(self):
        rng = np.random.default_rng(7)
        scores = np.concatenate(
            [rng.normal(0.9, 0.01, 3), rng.normal(0.55, 0.01, 4), rng.normal(0.1, 0.01, 13)]
        )
        pruner = ProgressiveClusterPruner(dispersion_threshold=0.1, exact_rank_mode=True)
        decision = pruner.decide(scores, slots_remaining=5)
        assert decision.selected.size == 0
        # Winners and boundary candidates all keep computing.
        assert set(decision.deferred.tolist()) == set(range(7))
        assert set(decision.dropped.tolist()) == set(range(7, 20))

    def test_small_pool_keeps_computing(self):
        """In exact mode, survivors ≤ slots must not early-accept."""
        pruner = ProgressiveClusterPruner(dispersion_threshold=0.1, exact_rank_mode=True)
        decision = pruner.decide(np.array([0.9, 0.5]), slots_remaining=3)
        assert not decision.triggered

    def test_hopeless_still_dropped(self):
        """Exact mode still prunes candidates with no top-K chance —
        that is where its speedup comes from (§7)."""
        rng = np.random.default_rng(8)
        scores = np.concatenate([rng.normal(0.9, 0.01, 5), rng.normal(0.1, 0.01, 15)])
        pruner = ProgressiveClusterPruner(dispersion_threshold=0.1, exact_rank_mode=True)
        decision = pruner.decide(scores, slots_remaining=3)
        assert decision.dropped.size > 0
