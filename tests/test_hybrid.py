"""Unit tests for the hybrid retriever."""

import numpy as np
import pytest

from repro.harness.runner import shared_tokenizer
from repro.model.zoo import QWEN3_0_6B
from repro.retrieval.corpus import SyntheticCorpus
from repro.retrieval.hybrid import HybridRetriever


@pytest.fixture(scope="module")
def corpus():
    return SyntheticCorpus(num_docs=120, num_topics=8, words_per_doc=80)


@pytest.fixture(scope="module")
def retriever(corpus):
    return HybridRetriever(corpus, per_arm=10)


class TestConstruction:
    def test_invalid_per_arm(self, corpus):
        with pytest.raises(ValueError):
            HybridRetriever(corpus, per_arm=0)

    def test_invalid_index_kind(self, corpus):
        with pytest.raises(ValueError):
            HybridRetriever(corpus, index_kind="hnsw")

    def test_ivf_variant_builds(self, corpus):
        retriever = HybridRetriever(corpus, index_kind="ivf", per_arm=5)
        pool = retriever.retrieve(corpus.make_query(0, topic_id=1))
        assert pool.size > 0


class TestRetrieve:
    def test_pool_deduplicated(self, retriever, corpus):
        pool = retriever.retrieve(corpus.make_query(0, topic_id=2))
        assert len(pool.doc_ids) == len(set(pool.doc_ids))

    def test_pool_bounded_by_both_arms(self, retriever, corpus):
        pool = retriever.retrieve(corpus.make_query(1, topic_id=3))
        assert pool.size <= 20
        assert len(pool.sparse_ids) <= 10
        assert len(pool.dense_ids) <= 10

    def test_pool_union_of_arms(self, retriever, corpus):
        pool = retriever.retrieve(corpus.make_query(2, topic_id=4))
        assert set(pool.doc_ids) == set(pool.sparse_ids) | set(pool.dense_ids)

    def test_arm_costs_positive(self, retriever, corpus):
        pool = retriever.retrieve(corpus.make_query(3, topic_id=5))
        assert pool.sparse_seconds > 0
        assert pool.dense_seconds > 0

    def test_pool_mostly_on_topic(self, retriever, corpus):
        pool = retriever.retrieve(corpus.make_query(4, topic_id=6))
        topics = [corpus.document(d).topic_id for d in pool.doc_ids]
        assert topics.count(6) >= pool.size * 0.5

    def test_recall_reasonable(self, retriever, corpus):
        recalls = [
            retriever.retrieve(corpus.make_query(i, topic_id=i % 8)).recall()
            for i in range(4)
        ]
        assert np.mean(recalls) > 0.3

    def test_pool_ground_truth_views(self, retriever, corpus):
        query = corpus.make_query(5, topic_id=1)
        pool = retriever.retrieve(query)
        assert np.array_equal(pool.relevance(), query.relevance[pool.doc_ids])
        assert np.array_equal(pool.labels(), query.labels[pool.doc_ids])


class TestBuildBatch:
    def test_batch_matches_pool(self, retriever, corpus):
        tokenizer = shared_tokenizer(QWEN3_0_6B)
        query = corpus.make_query(6, topic_id=2)
        pool = retriever.retrieve(query)
        batch = retriever.build_batch(pool, tokenizer, 512)
        assert batch.size == pool.size
        assert np.array_equal(batch.uids, np.array(pool.doc_ids))
        assert np.array_equal(batch.relevance, pool.relevance())

    def test_batch_tokens_shape(self, retriever, corpus):
        tokenizer = shared_tokenizer(QWEN3_0_6B)
        pool = retriever.retrieve(corpus.make_query(7, topic_id=3))
        batch = retriever.build_batch(pool, tokenizer, 256)
        assert batch.tokens.shape == (pool.size, 256)

    def test_uids_stable_across_queries(self, retriever, corpus):
        """The same document must carry the same uid in every pool —
        the semantic process keys off it."""
        tokenizer = shared_tokenizer(QWEN3_0_6B)
        pool_a = retriever.retrieve(corpus.make_query(8, topic_id=4))
        pool_b = retriever.retrieve(corpus.make_query(9, topic_id=4))
        batch_a = retriever.build_batch(pool_a, tokenizer, 256)
        batch_b = retriever.build_batch(pool_b, tokenizer, 256)
        shared = set(pool_a.doc_ids) & set(pool_b.doc_ids)
        for doc_id in shared:
            ia = pool_a.doc_ids.index(doc_id)
            ib = pool_b.doc_ids.index(doc_id)
            assert batch_a.uids[ia] == batch_b.uids[ib] == doc_id
