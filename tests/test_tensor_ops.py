"""Unit tests for the numpy transformer kernels."""

import numpy as np
import pytest

from repro.model.tensor_ops import (
    causal_mask,
    gelu,
    layer_norm,
    merge_heads,
    padding_mask,
    rms_norm,
    silu,
    softmax,
    split_heads,
)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = np.random.default_rng(0).standard_normal((4, 7))
        out = softmax(x)
        assert np.allclose(out.sum(axis=-1), 1.0)

    def test_nonnegative(self):
        x = np.random.default_rng(1).standard_normal((3, 5))
        assert (softmax(x) >= 0).all()

    def test_numerically_stable_for_large_inputs(self):
        x = np.array([[1e4, 1e4 + 1.0]])
        out = softmax(x)
        assert np.isfinite(out).all()
        assert out[0, 1] > out[0, 0]

    def test_handles_minus_inf_mask(self):
        x = np.array([[0.0, -np.inf, 0.0]])
        out = softmax(x)
        assert out[0, 1] == 0.0
        assert out[0, 0] == pytest.approx(0.5)

    def test_invariant_to_constant_shift(self):
        x = np.random.default_rng(2).standard_normal(6)
        assert np.allclose(softmax(x), softmax(x + 100.0))


class TestNorms:
    def test_rms_norm_unit_scale(self):
        x = np.random.default_rng(0).standard_normal((2, 3, 8))
        out = rms_norm(x, np.ones(8))
        rms = np.sqrt(np.mean(np.square(out), axis=-1))
        assert np.allclose(rms, 1.0, atol=1e-3)

    def test_rms_norm_weight_scales_output(self):
        x = np.random.default_rng(0).standard_normal((2, 8))
        assert np.allclose(rms_norm(x, 2 * np.ones(8)), 2 * rms_norm(x, np.ones(8)))

    def test_layer_norm_zero_mean_unit_var(self):
        x = np.random.default_rng(1).standard_normal((4, 16))
        out = layer_norm(x, np.ones(16), np.zeros(16))
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-7)
        assert np.allclose(out.var(axis=-1), 1.0, atol=1e-3)

    def test_layer_norm_bias_shifts(self):
        x = np.random.default_rng(2).standard_normal((4, 16))
        out = layer_norm(x, np.ones(16), 3 * np.ones(16))
        assert np.allclose(out.mean(axis=-1), 3.0, atol=1e-6)


class TestActivations:
    def test_gelu_at_zero(self):
        assert gelu(np.array(0.0)) == pytest.approx(0.0)

    def test_gelu_asymptotes(self):
        assert gelu(np.array(10.0)) == pytest.approx(10.0, rel=1e-3)
        assert gelu(np.array(-10.0)) == pytest.approx(0.0, abs=1e-3)

    def test_silu_at_zero(self):
        assert silu(np.array(0.0)) == pytest.approx(0.0)

    def test_silu_is_x_times_sigmoid(self):
        x = np.linspace(-4, 4, 17)
        sigmoid = 1.0 / (1.0 + np.exp(-x))
        assert np.allclose(silu(x), x * sigmoid)


class TestMasks:
    def test_causal_mask_blocks_future(self):
        mask = causal_mask(4)
        assert mask[0, 1] == -np.inf
        assert mask[2, 3] == -np.inf

    def test_causal_mask_allows_past_and_self(self):
        mask = causal_mask(4)
        assert mask[2, 2] == 0.0
        assert mask[3, 0] == 0.0

    def test_padding_mask_shape_and_values(self):
        mask = padding_mask(np.array([2, 4]), 4)
        assert mask.shape == (2, 1, 1, 4)
        assert mask[0, 0, 0, 1] == 0.0
        assert mask[0, 0, 0, 2] == -np.inf
        assert (mask[1] == 0.0).all()


class TestHeadReshaping:
    def test_split_merge_roundtrip(self):
        x = np.random.default_rng(0).standard_normal((2, 5, 12))
        assert np.allclose(merge_heads(split_heads(x, 4)), x)

    def test_split_shape(self):
        x = np.zeros((2, 5, 12))
        assert split_heads(x, 3).shape == (2, 3, 5, 4)

    def test_indivisible_heads_rejected(self):
        with pytest.raises(ValueError):
            split_heads(np.zeros((1, 2, 10)), 3)
