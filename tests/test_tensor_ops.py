"""Unit tests for the numpy transformer kernels."""

import numpy as np
import pytest

from repro.model.tensor_ops import (
    causal_mask,
    gelu,
    layer_norm,
    merge_heads,
    pack_ragged,
    padding_mask,
    rms_norm,
    silu,
    softmax,
    split_heads,
    unpack_ragged,
)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = np.random.default_rng(0).standard_normal((4, 7))
        out = softmax(x)
        assert np.allclose(out.sum(axis=-1), 1.0)

    def test_nonnegative(self):
        x = np.random.default_rng(1).standard_normal((3, 5))
        assert (softmax(x) >= 0).all()

    def test_numerically_stable_for_large_inputs(self):
        x = np.array([[1e4, 1e4 + 1.0]])
        out = softmax(x)
        assert np.isfinite(out).all()
        assert out[0, 1] > out[0, 0]

    def test_handles_minus_inf_mask(self):
        x = np.array([[0.0, -np.inf, 0.0]])
        out = softmax(x)
        assert out[0, 1] == 0.0
        assert out[0, 0] == pytest.approx(0.5)

    def test_invariant_to_constant_shift(self):
        x = np.random.default_rng(2).standard_normal(6)
        assert np.allclose(softmax(x), softmax(x + 100.0))


class TestNorms:
    def test_rms_norm_unit_scale(self):
        x = np.random.default_rng(0).standard_normal((2, 3, 8))
        out = rms_norm(x, np.ones(8))
        rms = np.sqrt(np.mean(np.square(out), axis=-1))
        assert np.allclose(rms, 1.0, atol=1e-3)

    def test_rms_norm_weight_scales_output(self):
        x = np.random.default_rng(0).standard_normal((2, 8))
        assert np.allclose(rms_norm(x, 2 * np.ones(8)), 2 * rms_norm(x, np.ones(8)))

    def test_layer_norm_zero_mean_unit_var(self):
        x = np.random.default_rng(1).standard_normal((4, 16))
        out = layer_norm(x, np.ones(16), np.zeros(16))
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-7)
        assert np.allclose(out.var(axis=-1), 1.0, atol=1e-3)

    def test_layer_norm_bias_shifts(self):
        x = np.random.default_rng(2).standard_normal((4, 16))
        out = layer_norm(x, np.ones(16), 3 * np.ones(16))
        assert np.allclose(out.mean(axis=-1), 3.0, atol=1e-6)


class TestActivations:
    def test_gelu_at_zero(self):
        assert gelu(np.array(0.0)) == pytest.approx(0.0)

    def test_gelu_asymptotes(self):
        assert gelu(np.array(10.0)) == pytest.approx(10.0, rel=1e-3)
        assert gelu(np.array(-10.0)) == pytest.approx(0.0, abs=1e-3)

    def test_silu_at_zero(self):
        assert silu(np.array(0.0)) == pytest.approx(0.0)

    def test_silu_is_x_times_sigmoid(self):
        x = np.linspace(-4, 4, 17)
        sigmoid = 1.0 / (1.0 + np.exp(-x))
        assert np.allclose(silu(x), x * sigmoid)


class TestMasks:
    def test_causal_mask_blocks_future(self):
        mask = causal_mask(4)
        assert mask[0, 1] == -np.inf
        assert mask[2, 3] == -np.inf

    def test_causal_mask_allows_past_and_self(self):
        mask = causal_mask(4)
        assert mask[2, 2] == 0.0
        assert mask[3, 0] == 0.0

    def test_padding_mask_shape_and_values(self):
        mask = padding_mask(np.array([2, 4]), 4)
        assert mask.shape == (2, 1, 1, 4)
        assert mask[0, 0, 0, 1] == 0.0
        assert mask[0, 0, 0, 2] == -np.inf
        assert (mask[1] == 0.0).all()


class TestHeadReshaping:
    def test_split_merge_roundtrip(self):
        x = np.random.default_rng(0).standard_normal((2, 5, 12))
        assert np.allclose(merge_heads(split_heads(x, 4)), x)

    def test_split_shape(self):
        x = np.zeros((2, 5, 12))
        assert split_heads(x, 3).shape == (2, 3, 5, 4)

    def test_indivisible_heads_rejected(self):
        with pytest.raises(ValueError):
            split_heads(np.zeros((1, 2, 10)), 3)


# ----------------------------------------------------------------------
# Pinning tests: the in-place-friendly kernels must stay *bitwise*
# identical to the original (naive) formulations they replaced
# (DESIGN.md §11 — batched gang kernels rely on this).


def _softmax_reference(x, axis=-1):
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def _gelu_reference(x):
    return 0.5 * x * (1.0 + np.tanh(np.sqrt(2.0 / np.pi) * (x + 0.044715 * np.power(x, 3))))


def _silu_reference(x):
    return x / (1.0 + np.exp(-x))


class TestPinnedNumerics:
    def test_softmax_bitwise_pinned(self):
        rng = np.random.default_rng(7)
        for shape in [(5,), (4, 7), (2, 4, 8, 8)]:
            x = rng.standard_normal(shape) * 10.0
            np.testing.assert_array_equal(softmax(x.copy()), _softmax_reference(x))

    def test_softmax_bitwise_pinned_with_mask(self):
        rng = np.random.default_rng(8)
        x = rng.standard_normal((3, 6))
        x[:, 4:] = -np.inf
        np.testing.assert_array_equal(softmax(x.copy()), _softmax_reference(x))

    def test_softmax_does_not_mutate_input(self):
        x = np.random.default_rng(9).standard_normal((3, 5))
        original = x.copy()
        softmax(x)
        np.testing.assert_array_equal(x, original)

    def test_gelu_bitwise_pinned(self):
        rng = np.random.default_rng(10)
        for shape in [(9,), (4, 6), (2, 3, 5)]:
            x = rng.standard_normal(shape) * 4.0
            np.testing.assert_array_equal(gelu(x.copy()), _gelu_reference(x))

    def test_gelu_does_not_mutate_input(self):
        x = np.random.default_rng(11).standard_normal(16)
        original = x.copy()
        gelu(x)
        np.testing.assert_array_equal(x, original)

    def test_silu_bitwise_pinned(self):
        rng = np.random.default_rng(12)
        for shape in [(9,), (4, 6), (2, 3, 5)]:
            x = rng.standard_normal(shape) * 4.0
            np.testing.assert_array_equal(silu(x.copy()), _silu_reference(x))

    def test_silu_does_not_mutate_input(self):
        x = np.random.default_rng(13).standard_normal(16)
        original = x.copy()
        silu(x)
        np.testing.assert_array_equal(x, original)


class TestMaskMemoization:
    def test_causal_mask_cached_object_reused(self):
        assert causal_mask(11) is causal_mask(11)

    def test_causal_mask_is_readonly(self):
        mask = causal_mask(5)
        assert not mask.flags.writeable
        with pytest.raises(ValueError):
            mask[0, 0] = 1.0

    def test_causal_mask_matches_reference(self):
        n = 6
        reference = np.zeros((n, n))
        reference[np.triu_indices(n, k=1)] = -np.inf
        np.testing.assert_array_equal(causal_mask(n), reference)

    def test_padding_mask_cached_object_reused(self):
        lengths = np.array([3, 7, 1])
        assert padding_mask(lengths, 8) is padding_mask(lengths.copy(), 8)

    def test_padding_mask_distinct_lengths_distinct_entries(self):
        a = padding_mask(np.array([2, 2]), 4)
        b = padding_mask(np.array([2, 3]), 4)
        assert a is not b

    def test_padding_mask_is_readonly(self):
        mask = padding_mask(np.array([1, 2]), 4)
        assert not mask.flags.writeable

    def test_padding_mask_matches_reference(self):
        lengths = np.array([2, 4, 0])
        seq_len = 4
        positions = np.arange(seq_len)
        reference = np.where(
            positions[None, :] >= lengths[:, None], -np.inf, 0.0
        )[:, None, None, :]
        np.testing.assert_array_equal(padding_mask(lengths, seq_len), reference)


class TestRaggedPacking:
    def test_pack_concatenates_along_leading_axis(self):
        rng = np.random.default_rng(14)
        arrays = [rng.standard_normal((n, 3, 4)) for n in (2, 5, 1)]
        packed, sizes = pack_ragged(arrays)
        assert sizes == (2, 5, 1)
        np.testing.assert_array_equal(packed, np.concatenate(arrays, axis=0))

    def test_solo_pack_is_zero_copy(self):
        x = np.zeros((3, 2))
        packed, sizes = pack_ragged([x])
        assert packed is x
        assert sizes == (3,)

    def test_unpack_roundtrip_views(self):
        rng = np.random.default_rng(15)
        arrays = [rng.standard_normal((n, 4)) for n in (1, 4, 2)]
        packed, sizes = pack_ragged(arrays)
        parts = unpack_ragged(packed, sizes)
        assert len(parts) == 3
        for part, original in zip(parts, arrays):
            np.testing.assert_array_equal(part, original)
            assert part.base is packed  # zero-copy view
