"""Unit tests for tiered relevance generation."""

import numpy as np
import pytest

from repro.data.relevance import RelevanceProfile, Tier


class TestTier:
    def test_draws_clipped_to_unit_interval(self):
        tier = Tier(center=0.95, spread=0.5)
        values = tier.draw(np.random.default_rng(0), 500)
        assert (values >= 0.01).all() and (values <= 0.99).all()

    def test_draws_center_on_tier_mean(self):
        tier = Tier(center=0.5, spread=0.05)
        values = tier.draw(np.random.default_rng(1), 2000)
        assert abs(values.mean() - 0.5) < 0.01


class TestValidation:
    def test_separation_bounds(self):
        with pytest.raises(ValueError):
            RelevanceProfile(separation=0.0)
        with pytest.raises(ValueError):
            RelevanceProfile(separation=1.5)

    def test_rates_bounded(self):
        with pytest.raises(ValueError):
            RelevanceProfile(hard_relevant_rate=1.2)
        with pytest.raises(ValueError):
            RelevanceProfile(invisible_relevant_rate=-0.1)
        with pytest.raises(ValueError):
            RelevanceProfile(plausible_distractor_rate=2.0)

    def test_relevant_tier_rates_sum_at_most_one(self):
        with pytest.raises(ValueError):
            RelevanceProfile(hard_relevant_rate=0.6, invisible_relevant_rate=0.6)

    def test_relevant_range_sane(self):
        with pytest.raises(ValueError):
            RelevanceProfile(relevant_range=(5, 2))
        with pytest.raises(ValueError):
            RelevanceProfile(relevant_range=(-1, 2))


class TestDrawPool:
    def test_shapes(self):
        profile = RelevanceProfile()
        labels, relevance = profile.draw_pool(np.random.default_rng(0), 20)
        assert labels.shape == (20,)
        assert relevance.shape == (20,)
        assert labels.dtype == bool

    def test_relevant_count_within_range(self):
        profile = RelevanceProfile(relevant_range=(3, 7))
        for seed in range(20):
            labels, _ = profile.draw_pool(np.random.default_rng(seed), 20)
            assert 3 <= labels.sum() <= 7

    def test_relevant_count_capped_by_pool(self):
        profile = RelevanceProfile(relevant_range=(8, 15))
        labels, _ = profile.draw_pool(np.random.default_rng(0), 10)
        assert labels.sum() <= 10

    def test_invalid_pool_size_rejected(self):
        with pytest.raises(ValueError):
            RelevanceProfile().draw_pool(np.random.default_rng(0), 0)

    def test_relevant_docs_read_higher_on_average(self):
        profile = RelevanceProfile()
        rng = np.random.default_rng(7)
        rel_scores, dist_scores = [], []
        for _ in range(50):
            labels, relevance = profile.draw_pool(rng, 20)
            rel_scores.extend(relevance[labels])
            dist_scores.extend(relevance[~labels])
        assert np.mean(rel_scores) > np.mean(dist_scores) + 0.2

    def test_invisible_relevant_band_exists(self):
        """Some ground-truth relevant docs read low — the P@K<1 source."""
        profile = RelevanceProfile(invisible_relevant_rate=0.5)
        rng = np.random.default_rng(3)
        low_relevant = 0
        for _ in range(50):
            labels, relevance = profile.draw_pool(rng, 20)
            low_relevant += int(((relevance < 0.45) & labels).sum())
        assert low_relevant > 0


class TestSeparation:
    def test_compression_squeezes_spread(self):
        wide = RelevanceProfile(separation=1.0)
        narrow = RelevanceProfile(separation=0.4)
        rng_a, rng_b = np.random.default_rng(5), np.random.default_rng(5)
        _, rel_wide = wide.draw_pool(rng_a, 200)
        _, rel_narrow = narrow.draw_pool(rng_b, 200)
        assert rel_narrow.std() < rel_wide.std()

    def test_full_separation_is_identity(self):
        profile = RelevanceProfile(separation=1.0)
        values = np.array([0.1, 0.5, 0.9])
        assert np.array_equal(profile._compress(values), values)
