"""Unit tests for the layerwise score-dynamics process."""

import numpy as np
import pytest

from repro.model.semantics import ScoreDynamics, SemanticsConfig, _unit_normal, _unit_normals
from repro.model.zoo import QWEN3_0_6B, QWEN3_8B


@pytest.fixture
def config():
    return SemanticsConfig()


@pytest.fixture
def dynamics(config):
    return ScoreDynamics(config, num_layers=28, model_seed=601)


class TestConfigValidation:
    def test_midpoint_bounds(self):
        with pytest.raises(ValueError):
            SemanticsConfig(fanout_midpoint=0.0)
        with pytest.raises(ValueError):
            SemanticsConfig(fanout_midpoint=1.0)

    def test_sharpness_positive(self):
        with pytest.raises(ValueError):
            SemanticsConfig(fanout_sharpness=0.0)

    def test_noise_ordering(self):
        with pytest.raises(ValueError):
            SemanticsConfig(noise_initial=0.01, noise_final=0.05)

    def test_noise_decay_positive(self):
        with pytest.raises(ValueError):
            SemanticsConfig(noise_decay=0.0)


class TestFanout:
    def test_boundary_values(self, config):
        assert config.fanout(0.0) == pytest.approx(0.0)
        assert config.fanout(1.0) == pytest.approx(1.0)

    def test_monotone_increasing(self, config):
        values = [config.fanout(p) for p in np.linspace(0, 1, 21)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_out_of_range_rejected(self, config):
        with pytest.raises(ValueError):
            config.fanout(-0.1)
        with pytest.raises(ValueError):
            config.fanout(1.1)

    def test_compressed_early(self, config):
        """Scores start compressed around the anchor (Figure 2a)."""
        assert config.fanout(0.1) < 0.15


class TestNoise:
    def test_decays_with_depth(self, config):
        scales = [config.noise_scale(p) for p in np.linspace(0, 1, 11)]
        assert all(b <= a for a, b in zip(scales, scales[1:]))

    def test_endpoints(self, config):
        assert config.noise_scale(0.0) == pytest.approx(config.noise_initial)
        assert config.noise_scale(1.0) == pytest.approx(config.noise_final)

    def test_overfit_noise_rises_late(self):
        config = QWEN3_8B.semantics
        assert config.late_overfit_noise > 0
        # Past the 75% depth mark the noise turns back up.
        assert config.noise_scale(1.0) > config.noise_scale(0.75)

    def test_well_behaved_models_have_no_late_rise(self):
        config = QWEN3_0_6B.semantics
        assert config.noise_scale(1.0) <= config.noise_scale(0.75)


class TestUnitNormals:
    def test_deterministic(self):
        uids = np.array([10, 20, 30], dtype=np.uint64)
        a = _unit_normals(601, uids, 5)
        b = _unit_normals(601, uids, 5)
        assert np.array_equal(a, b)

    def test_batch_independence(self):
        """A candidate's draw must not depend on its batch neighbours —
        cross-encoder scores are per-pair (DESIGN.md §2)."""
        solo = _unit_normals(601, np.array([42]), 3)[0]
        batched = _unit_normals(601, np.array([1, 42, 99]), 3)[1]
        assert solo == batched

    def test_varies_with_layer(self):
        uids = np.array([42])
        assert _unit_normals(601, uids, 1)[0] != _unit_normals(601, uids, 2)[0]

    def test_varies_with_seed(self):
        uids = np.array([42])
        assert _unit_normals(601, uids, 1)[0] != _unit_normals(602, uids, 1)[0]

    def test_scalar_wrapper_matches(self):
        assert _unit_normal(601, 42, 3) == _unit_normals(601, np.array([42]), 3)[0]

    def test_roughly_standard_normal(self):
        draws = _unit_normals(601, np.arange(20_000, dtype=np.uint64), 0)
        assert abs(draws.mean()) < 0.03
        assert abs(draws.std() - 1.0) < 0.03


class TestScoreDynamics:
    def test_progress_bounds(self, dynamics):
        assert dynamics.progress(0) == pytest.approx(1 / 28)
        assert dynamics.progress(27) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            dynamics.progress(28)
        with pytest.raises(ValueError):
            dynamics.progress(-1)

    def test_scores_converge_to_relevance(self, dynamics):
        relevance = np.array([0.9, 0.1])
        uids = np.array([1, 2])
        final = dynamics.final_scores(relevance, uids)
        assert abs(final[0] - 0.9) < 0.06
        assert abs(final[1] - 0.1) < 0.06

    def test_early_scores_compressed_around_anchor(self, dynamics):
        """Mean early-layer deviation from the anchor is far smaller
        than the relevance gap being expressed (Figure 2a's blob)."""
        n = 200
        relevance = np.full(n, 0.95)
        uids = np.arange(n)
        early = dynamics.scores_at(0, relevance, uids)
        final = dynamics.final_scores(relevance, uids)
        anchor = dynamics.config.anchor
        early_dev = np.abs(early - anchor).mean()
        final_dev = np.abs(final - anchor).mean()
        assert early_dev < 0.5 * final_dev

    def test_shape_mismatch_rejected(self, dynamics):
        with pytest.raises(ValueError):
            dynamics.scores_at(0, np.array([0.5, 0.6]), np.array([1]))

    def test_trajectory_length(self, dynamics):
        assert dynamics.trajectory(0.8, 7).size == 28

    def test_trajectory_matches_score_at(self, dynamics):
        traj = dynamics.trajectory(0.8, 7)
        assert traj[13] == dynamics.score_at(13, 0.8, 7)

    def test_num_layers_validated(self, config):
        with pytest.raises(ValueError):
            ScoreDynamics(config, num_layers=0, model_seed=1)

    def test_ranking_stabilizes_with_depth(self, dynamics):
        """The Figure 2 premise: deep-layer rankings match the final one
        more often than shallow-layer rankings do."""
        rng = np.random.default_rng(0)
        relevance = rng.uniform(0.05, 0.95, size=20)
        uids = rng.integers(0, 2**31, size=20)
        final_order = np.argsort(dynamics.final_scores(relevance, uids))

        def agreement(layer):
            order = np.argsort(dynamics.scores_at(layer, relevance, uids))
            return (order == final_order).mean()

        assert agreement(24) >= agreement(2)
