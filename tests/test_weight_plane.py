"""Tests for the shared weight plane and layer fusion (DESIGN.md §7)."""

import numpy as np
import pytest

from repro.core.config import PrismConfig
from repro.core.engine import PrismEngine
from repro.core.scheduler import DeviceScheduler, SchedulerConfig
from repro.core.streaming import WeightPlane
from repro.data.datasets import get_dataset
from repro.data.workloads import build_batch
from repro.device.executor import DeviceExecutor
from repro.device.platforms import NVIDIA_5070, get_profile
from repro.harness.runner import shared_model, shared_tokenizer
from repro.model.weights import WeightStore
from repro.model.zoo import QWEN3_0_6B


def make_batch(num_candidates=10, query_idx=0, dataset="wikipedia"):
    query = get_dataset(dataset).queries(query_idx + 1, num_candidates)[query_idx]
    tokenizer = shared_tokenizer(QWEN3_0_6B)
    return build_batch(query, tokenizer, QWEN3_0_6B.max_seq_len)


def make_engine(shared_plane: bool) -> PrismEngine:
    device = get_profile("nvidia_5070").create()
    engine = PrismEngine(
        shared_model(QWEN3_0_6B),
        device,
        PrismConfig(numerics=False, shared_weight_plane=shared_plane),
    )
    engine.prepare()
    return engine


@pytest.fixture
def executor():
    return DeviceExecutor(NVIDIA_5070.create())


@pytest.fixture
def store():
    return WeightStore(QWEN3_0_6B)


@pytest.fixture
def plane(store, executor):
    return WeightPlane(store, executor)


class TestPlaneRefcounting:
    def test_first_acquirer_fetches_later_attach_free(self, plane, executor):
        p1, p2 = plane.open_pass(), plane.open_pass()
        p1.begin_pass()
        p1.acquire(0)
        fetches_before = plane.stats.fetches
        p2.begin_pass()
        p2.acquire(0)
        assert plane.stats.fetches == fetches_before  # no new SSD read
        assert plane.stats.attaches == 1
        assert plane.stats.saved_bytes == plane.store.layer_nbytes(0)
        assert plane.refcount(0) == 2

    def test_buffer_survives_until_last_pass_advances(self, plane, executor):
        p1, p2 = plane.open_pass(), plane.open_pass()
        p1.begin_pass()
        p2.begin_pass()
        p1.acquire(0)
        p2.acquire(0)
        p1.advance(0)
        # p2 still holds layer 0 — the buffer must stay resident.
        assert 0 in plane.resident_layers
        p2.advance(0)
        assert 0 not in plane.resident_layers

    def test_registered_but_unstarted_pass_pins_layer_zero(self, plane):
        """A pass admitted but not yet stepped still needs layer 0: the
        plane must not free it under the pass's feet (DESIGN.md §7)."""
        runner, admitted = plane.open_pass(), plane.open_pass()
        runner.begin_pass()
        runner.acquire(0)
        runner.advance(0)
        assert 0 in plane.resident_layers  # pinned by `admitted`
        admitted.begin_pass()
        admitted.acquire(0)
        assert plane.stats.attaches >= 1
        admitted.advance(0)
        runner.finish_pass()
        admitted.finish_pass()
        assert plane.resident_layers == set()

    def test_last_pass_out_drains_everything(self, plane, executor):
        p1 = plane.open_pass()
        p1.begin_pass()
        p1.acquire(0)
        p1.finish_pass()  # early termination: lookahead still in flight
        assert plane.open_passes == 0
        assert executor.device.memory.in_use == 0

    def test_release_of_unheld_layer_rejected(self, plane):
        with pytest.raises(RuntimeError):
            plane._release(3)

    def test_lookahead_validated(self, store, executor):
        with pytest.raises(ValueError):
            WeightPlane(store, executor, lookahead=0)


class TestSoloBitIdentity:
    """A solo pass through the plane must be *bit-identical* to the
    per-request streamer path — the §7 substitution invariant."""

    def test_solo_rerank_identical(self):
        batch = make_batch()
        private = make_engine(shared_plane=False).rerank(batch, 5)
        shared = make_engine(shared_plane=True).rerank(batch, 5)
        assert np.array_equal(private.top_indices, shared.top_indices)
        assert np.array_equal(private.top_scores, shared.top_scores)
        assert private.latency_seconds == shared.latency_seconds
        assert private.io_stall_seconds == shared.io_stall_seconds
        assert private.layers_executed == shared.layers_executed

    def test_sequential_requests_identical(self):
        """Back-to-back solo requests (no concurrency) stay identical
        too — each pass opens and closes its own plane epoch."""
        engine_private = make_engine(shared_plane=False)
        engine_shared = make_engine(shared_plane=True)
        for idx in range(3):
            batch = make_batch(query_idx=idx)
            a = engine_private.rerank(batch, 4)
            b = engine_shared.rerank(batch, 4)
            assert np.array_equal(a.top_indices, b.top_indices)
            assert a.latency_seconds == b.latency_seconds

    def test_solo_plane_accounting_shows_no_sharing(self):
        engine = make_engine(shared_plane=True)
        engine.rerank(make_batch(), 5)
        assert engine.weight_plane.stats.attaches == 0
        assert engine.weight_plane.stats.saved_bytes == 0
        assert engine.weight_plane.stats.fetches > 0


class TestSharing:
    def test_concurrent_wave_fetches_each_layer_once(self):
        engine = make_engine(shared_plane=True)
        scheduler = DeviceScheduler(engine, SchedulerConfig(policy="fusion", max_concurrency=4))
        for idx in range(4):
            scheduler.submit(make_batch(query_idx=idx), 4)
        scheduler.drain()
        fetches = engine.weight_plane.stats.per_layer_fetches
        assert fetches, "the wave must have streamed layers"
        assert all(count == 1 for count in fetches.values()), fetches
        assert engine.weight_plane.stats.attaches > 0

    def test_plane_cuts_ssd_weight_traffic(self):
        def wave_read_bytes(shared: bool) -> int:
            engine = make_engine(shared_plane=shared)
            mark = len(engine.device.ssd.request_log)
            scheduler = DeviceScheduler(
                engine,
                SchedulerConfig(policy="fusion" if shared else "round_robin", max_concurrency=4),
            )
            for idx in range(4):
                scheduler.submit(make_batch(query_idx=idx), 4)
            scheduler.drain()
            return sum(
                r.nbytes
                for r in engine.device.ssd.request_log[mark:]
                if "load/" in r.tag and "/layer" in r.tag
            )

        assert wave_read_bytes(True) < 0.5 * wave_read_bytes(False)

    def test_selections_match_solo_under_fusion(self):
        batches = [make_batch(query_idx=i) for i in range(3)]
        solo = [make_engine(shared_plane=False).rerank(b, 4) for b in batches]
        engine = make_engine(shared_plane=True)
        scheduler = DeviceScheduler(engine, SchedulerConfig(policy="fusion", max_concurrency=3))
        for batch in batches:
            scheduler.submit(batch, 4)
        outcomes = {o.request_id: o for o in scheduler.drain()}
        for index, reference in enumerate(solo):
            assert np.array_equal(outcomes[index].result.top_indices, reference.top_indices)
            assert np.array_equal(outcomes[index].result.top_scores, reference.top_scores)


class TestDeterministicFusedTraces:
    def test_identical_runs_identical_traces(self):
        def run():
            engine = make_engine(shared_plane=True)
            config = SchedulerConfig(policy="fusion", max_concurrency=4)
            scheduler = DeviceScheduler(engine, config)
            now = engine.device.clock.now
            for idx in range(4):
                scheduler.submit(make_batch(query_idx=idx), 4, at=now + idx * 0.01)
            scheduler.drain()
            return scheduler

        first, second = run(), run()
        assert first.trace_text() == second.trace_text()
        assert first.trace_text()  # non-vacuous
        assert first.fused_group_sizes() == second.fused_group_sizes()


class TestFailureReleasesRefcounts:
    def test_mid_pass_failure_drops_plane_refs(self, monkeypatch):
        """A pass dying mid-flight must release its refcounts so the
        plane drains; the engine stays serviceable afterwards."""
        engine = make_engine(shared_plane=True)
        classifier_bytes = engine.store.classifier_nbytes()

        original = engine.model.forward_layer
        calls = {"n": 0}

        def failing_forward(state, layer, **kwargs):
            calls["n"] += 1
            if calls["n"] == 3:
                raise RuntimeError("injected mid-pass failure")
            return original(state, layer, **kwargs)

        monkeypatch.setattr(engine.model, "forward_layer", failing_forward)
        task = engine.start(make_batch(), 5)
        with pytest.raises(RuntimeError, match="injected"):
            while not task.done:
                task.step()
        # Every plane buffer is gone and no pass is still registered.
        assert engine.weight_plane.open_passes == 0
        assert engine.weight_plane.resident_layers == set()
        assert all(count == 0 for count in engine.weight_plane._refcount.values())
        assert engine.device.memory.in_use_by_category("weights") == classifier_bytes
        # A fresh solo request on the same engine completes normally.
        monkeypatch.setattr(engine.model, "forward_layer", original)
        result = engine.rerank(make_batch(query_idx=1), 4)
        assert result.top_indices.size == 4

    def test_abandoned_never_stepped_task_releases_plane(self):
        """An admitted task whose generator never ran must still release
        its plane pass on close() — else its frontier pins layer 0 and
        every later sweep accumulates the whole model in memory."""
        engine = make_engine(shared_plane=True)
        abandoned = engine.start(make_batch(), 5)
        abandoned.close()
        assert engine.weight_plane.open_passes == 0
        engine.rerank(make_batch(query_idx=1), 4)
        assert engine.weight_plane.resident_layers == set()
        abandoned.close()  # idempotent

    def test_drain_failure_closes_admitted_gang(self, monkeypatch):
        """When one gang member dies mid-drain, the scheduler closes the
        abandoned survivors: no pass stays registered on the plane."""
        engine = make_engine(shared_plane=True)
        scheduler = DeviceScheduler(engine, SchedulerConfig(policy="fusion", max_concurrency=4))
        for idx in range(4):
            scheduler.submit(make_batch(query_idx=idx), 4)

        def failing_forward(state, layer, **kwargs):
            raise RuntimeError("first gang member dies")

        monkeypatch.setattr(engine.model, "forward_layer", failing_forward)
        with pytest.raises(RuntimeError, match="gang member dies"):
            scheduler.drain()
        assert engine.weight_plane.open_passes == 0
        assert engine.weight_plane.resident_layers == set()

    def test_surviving_pass_unaffected_by_peer_failure(self, monkeypatch):
        """One task failing must not strand or corrupt a concurrent
        peer attached to the same buffers."""
        engine = make_engine(shared_plane=True)
        batches = [make_batch(query_idx=0), make_batch(query_idx=1)]
        reference = make_engine(shared_plane=False).rerank(batches[1], 4)

        victim = engine.start(batches[0], 4)
        survivor = engine.start(batches[1], 4)
        victim.step()  # victim opens the epoch and holds layers
        survivor.step()

        original = engine.model.forward_layer

        def failing_forward(state, layer, **kwargs):
            raise RuntimeError("victim dies")

        monkeypatch.setattr(engine.model, "forward_layer", failing_forward)
        with pytest.raises(RuntimeError, match="victim dies"):
            victim.step()
        monkeypatch.setattr(engine.model, "forward_layer", original)

        while not survivor.done:
            survivor.step()
        assert np.array_equal(survivor.result.top_indices, reference.top_indices)
        # The dead pass no longer pins anything: once the survivor is
        # done the plane is fully drained.
        assert engine.weight_plane.open_passes == 0
        assert engine.weight_plane.resident_layers == set()
