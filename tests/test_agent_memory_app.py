"""Behaviour tests for the Agent Memory application (Figures 12 & 13)."""

import pytest

from repro.apps.agent_memory import (
    AGENT_WORKLOADS,
    AgentMemoryApp,
    generate_tasks,
)
from repro.model.zoo import QWEN3_0_6B


@pytest.fixture(scope="module")
def runs():
    out = {}
    for system in ("disable", "hf", "prism"):
        app = AgentMemoryApp(QWEN3_0_6B, "nvidia_5070", system=system)
        out[system] = app.run_workload("video", keep_timeline=True)
    return out


class TestWorkloadGeneration:
    def test_both_workloads_defined(self):
        assert set(AGENT_WORKLOADS) == {"video", "community"}

    def test_deterministic(self):
        a = generate_tasks(AGENT_WORKLOADS["video"])
        b = generate_tasks(AGENT_WORKLOADS["video"])
        assert [t.signature for t in a] == [t.signature for t in b]

    def test_task_counts(self):
        spec = AGENT_WORKLOADS["community"]
        tasks = generate_tasks(spec)
        assert len(tasks) == spec.num_tasks
        assert all(t.num_steps >= 2 for t in tasks)

    def test_repeats_marked(self):
        tasks = generate_tasks(AGENT_WORKLOADS["video"])
        assert any(t.is_repeat for t in tasks)

    def test_community_tasks_longer_on_average(self):
        video = generate_tasks(AGENT_WORKLOADS["video"])
        community = generate_tasks(AGENT_WORKLOADS["community"])
        mean = lambda ts: sum(t.num_steps for t in ts) / len(ts)
        assert mean(community) > mean(video)


class TestFigure12Shapes:
    def test_memory_systems_beat_disable(self, runs):
        """Caching trajectories cuts end-to-end latency (Figure 12)."""
        assert runs["hf"].mean_latency < runs["disable"].mean_latency
        assert runs["prism"].mean_latency < runs["disable"].mean_latency

    def test_prism_beats_hf(self, runs):
        assert runs["prism"].mean_latency < runs["hf"].mean_latency

    def test_prism_rerank_stage_cheaper(self, runs):
        assert runs["prism"].stage_means()["rerank"] < runs["hf"].stage_means()["rerank"]

    def test_env_time_identical_across_systems(self, runs):
        env = [r.stage_means()["env"] for r in runs.values()]
        assert max(env) == pytest.approx(min(env))

    def test_inference_drops_with_memory(self, runs):
        assert runs["hf"].stage_means()["inference"] < runs["disable"].stage_means()["inference"]

    def test_success_rates_high(self, runs):
        """Figure 12: success stays ≈1.0 with the memory enabled."""
        for run in runs.values():
            assert run.success_rate >= 0.9

    def test_disable_never_consults_memory(self, runs):
        assert runs["disable"].hit_rate == 0.0
        assert runs["disable"].stage_means()["rerank"] == 0.0

    def test_memory_systems_hit_often(self, runs):
        assert runs["hf"].hit_rate > 0.5
        assert runs["prism"].hit_rate > 0.5

    def test_hit_rates_equal_across_rerankers(self, runs):
        """HF and PRISM make the same accept decisions (exact scores)."""
        assert runs["prism"].hit_rate == pytest.approx(runs["hf"].hit_rate, abs=0.1)


class TestFigure13Shapes:
    def test_prism_peak_far_below_hf(self, runs):
        """Figure 13: 63 % peak reduction during a single action."""
        assert runs["prism"].peak_mib < 0.5 * runs["hf"].peak_mib

    def test_timeline_captured(self, runs):
        assert runs["prism"].timeline


class TestValidation:
    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError):
            AgentMemoryApp(QWEN3_0_6B, "nvidia_5070", system="magic")

    def test_unknown_workload_rejected(self):
        app = AgentMemoryApp(QWEN3_0_6B, "nvidia_5070", system="disable")
        with pytest.raises(KeyError):
            app.run_workload("gaming")
