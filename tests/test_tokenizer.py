"""Unit tests for the deterministic tokenizer."""

import numpy as np
import pytest

from repro.text.tokenizer import Tokenizer
from repro.text.vocab import Vocabulary


@pytest.fixture
def tokenizer():
    return Tokenizer(Vocabulary(10_000))


class TestEncodeText:
    def test_same_word_same_id(self, tokenizer):
        ids = tokenizer.encode_text("alpha beta alpha")
        assert ids[0] == ids[2]
        assert ids[0] != ids[1]

    def test_deterministic_across_instances(self):
        a = Tokenizer(Vocabulary(10_000)).encode_text("hello world")
        b = Tokenizer(Vocabulary(10_000)).encode_text("hello world")
        assert np.array_equal(a, b)

    def test_empty_text(self, tokenizer):
        assert tokenizer.encode_text("").size == 0

    def test_ids_are_regular_tokens(self, tokenizer):
        ids = tokenizer.encode_text("some words here")
        assert (ids >= tokenizer.vocab.num_special).all()
        assert (ids < tokenizer.vocab.size).all()


class TestEncodeSynthetic:
    def test_deterministic_in_seed(self, tokenizer):
        assert np.array_equal(
            tokenizer.encode_synthetic(42, 64), tokenizer.encode_synthetic(42, 64)
        )

    def test_different_seeds_differ(self, tokenizer):
        a = tokenizer.encode_synthetic(1, 64)
        b = tokenizer.encode_synthetic(2, 64)
        assert not np.array_equal(a, b)

    def test_requested_length(self, tokenizer):
        assert tokenizer.encode_synthetic(5, 100).size == 100


class TestBuildPair:
    def test_layout_bos_query_sep_doc_eos(self, tokenizer):
        vocab = tokenizer.vocab
        query = tokenizer.encode_synthetic(1, 4)
        doc = tokenizer.encode_synthetic(2, 6)
        seq = tokenizer.build_pair(query, doc, 32, with_template=False)
        assert seq[0] == vocab.BOS
        assert seq[5] == vocab.SEP
        assert seq[12] == vocab.EOS
        assert (seq[13:] == vocab.PAD).all()
        assert seq.size == 32

    def test_template_precedes_query(self, tokenizer):
        query = tokenizer.encode_synthetic(1, 4)
        doc = tokenizer.encode_synthetic(2, 6)
        template = tokenizer.template_ids()
        seq = tokenizer.build_pair(query, doc, 512)
        assert np.array_equal(seq[1 : 1 + template.size], template)
        assert np.array_equal(seq[1 + template.size : 1 + template.size + 4], query)

    def test_template_identical_across_pairs(self, tokenizer):
        """The instruction boilerplate is the same ids for every pair —
        the embedding cache's hottest rows."""
        a = tokenizer.build_pair(tokenizer.encode_synthetic(1, 4), tokenizer.encode_synthetic(2, 6), 512)
        b = tokenizer.build_pair(tokenizer.encode_synthetic(3, 4), tokenizer.encode_synthetic(4, 6), 512)
        t = tokenizer.template_ids().size
        assert np.array_equal(a[1 : 1 + t], b[1 : 1 + t])

    def test_document_truncated_first(self, tokenizer):
        query = tokenizer.encode_synthetic(1, 4)
        doc = tokenizer.encode_synthetic(2, 100)
        seq = tokenizer.build_pair(query, doc, 16, with_template=False)
        assert seq.size == 16
        # Query survives intact after BOS.
        assert np.array_equal(seq[1:5], query)

    def test_long_query_truncated_to_budget(self, tokenizer):
        query = tokenizer.encode_synthetic(1, 100)
        doc = tokenizer.encode_synthetic(2, 10)
        seq = tokenizer.build_pair(query, doc, 16)
        assert seq.size == 16

    def test_max_len_too_small_rejected(self, tokenizer):
        with pytest.raises(ValueError):
            tokenizer.build_pair(np.array([5]), np.array([6]), 3)

    def test_exactly_full_no_padding(self, tokenizer):
        query = tokenizer.encode_synthetic(1, 5)
        doc = tokenizer.encode_synthetic(2, 8)
        seq = tokenizer.build_pair(query, doc, 16, with_template=False)
        assert (seq != tokenizer.vocab.PAD).all()


class TestBatching:
    def test_batch_pairs_shape(self, tokenizer):
        query = tokenizer.encode_synthetic(1, 8)
        docs = [tokenizer.encode_synthetic(i, 20) for i in range(5)]
        batch = tokenizer.batch_pairs(query, docs, 64)
        assert batch.shape == (5, 64)
        assert batch.dtype == np.int64

    def test_attention_lengths_count_non_pad(self, tokenizer):
        query = tokenizer.encode_synthetic(1, 4)
        docs = [tokenizer.encode_synthetic(2, 6), tokenizer.encode_synthetic(3, 20)]
        batch = tokenizer.batch_pairs(query, docs, 32, with_template=False)
        lengths = tokenizer.attention_lengths(batch)
        assert lengths[0] == 3 + 4 + 6
        assert lengths[1] == 3 + 4 + 20

    def test_lengths_capped_by_max_len(self, tokenizer):
        query = tokenizer.encode_synthetic(1, 4)
        docs = [tokenizer.encode_synthetic(2, 500)]
        batch = tokenizer.batch_pairs(query, docs, 64)
        assert tokenizer.attention_lengths(batch)[0] == 64
