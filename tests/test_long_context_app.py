"""Behaviour tests for LLM Long-Context Selection (Figures 14 & 15)."""

import pytest

from repro.apps.long_context import LongContextApp, generate_tasks
from repro.model.zoo import QWEN3_0_6B


@pytest.fixture(scope="module")
def tasks():
    return generate_tasks(8)


@pytest.fixture(scope="module")
def runs(tasks):
    out = {}
    for system in ("baseline", "hf", "prism"):
        app = LongContextApp(QWEN3_0_6B, "nvidia_5070", system=system)
        out[system] = app.run(tasks, keep_timeline=True)
    return out


class TestTaskGeneration:
    def test_deterministic(self):
        a = generate_tasks(3)
        b = generate_tasks(3)
        assert [t.needed for t in a] == [t.needed for t in b]

    def test_needed_segments_within_range(self, tasks):
        for task in tasks:
            assert 2 <= len(task.needed) <= 4
            assert all(0 <= seg < task.num_segments for seg in task.needed)

    def test_needed_segments_read_relevant(self, tasks):
        for task in tasks:
            for seg in task.needed:
                assert task.relevance[seg] > 0.6

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_tasks(0)
        with pytest.raises(ValueError):
            generate_tasks(2, num_segments=0)


class TestFigure14Shapes:
    def test_rerank_systems_much_faster_than_baseline(self, runs):
        """Figure 14: selection cuts the end-to-end latency sharply
        (the paper reports 2.07× for no-reranker vs HF-reranker)."""
        assert runs["hf"].mean_latency < 0.6 * runs["baseline"].mean_latency
        assert runs["prism"].mean_latency < runs["hf"].mean_latency

    def test_baseline_has_no_rerank_stage(self, runs):
        assert runs["baseline"].mean_rerank_seconds == 0.0

    def test_rerank_inference_split(self, runs):
        run = runs["prism"]
        assert run.mean_rerank_seconds > 0
        assert run.mean_latency == pytest.approx(
            run.mean_rerank_seconds + run.mean_inference_seconds
        )

    def test_inference_cheaper_with_selection(self, runs):
        """Selected prompts are ~10× smaller than the full context."""
        assert runs["prism"].mean_inference_seconds < 0.5 * runs["baseline"].mean_inference_seconds

    def test_accuracy_not_hurt_by_selection(self, runs):
        """Figure 14: rerank systems match or beat the distracted
        full-context baseline."""
        assert runs["prism"].accuracy >= runs["baseline"].accuracy - 0.05
        assert runs["hf"].accuracy >= runs["baseline"].accuracy - 0.05

    def test_selection_covers_needed_segments(self, runs):
        assert runs["prism"].mean_coverage > 0.8
        assert runs["hf"].mean_coverage > 0.8


class TestFigure15Shapes:
    def test_prism_peak_below_hf(self, runs):
        """Figure 15: ≈1 GiB peak reduction vs the HF reranker."""
        assert runs["prism"].peak_mib < runs["hf"].peak_mib - 500

    def test_generator_weights_dominate_prism_footprint(self, runs):
        from repro.apps.llm import QWEN3_4B_INSTRUCT_W4
        from repro.device.memory import MiB

        generator_mib = QWEN3_4B_INSTRUCT_W4.weight_bytes() / MiB
        assert runs["prism"].peak_mib > generator_mib

    def test_timeline_captured(self, runs):
        assert runs["hf"].timeline


class TestValidation:
    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError):
            LongContextApp(QWEN3_0_6B, "nvidia_5070", system="rag")

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            LongContextApp(QWEN3_0_6B, "nvidia_5070", k_segments=0)

    def test_empty_tasks_rejected(self):
        app = LongContextApp(QWEN3_0_6B, "nvidia_5070", system="baseline")
        with pytest.raises(ValueError):
            app.run([])
