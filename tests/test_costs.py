"""Unit tests for paper-scale cost accounting — including the paper's
published anchor numbers (§2.2, §4.3, §4.4)."""

import pytest

from repro.device.memory import MiB
from repro.model import costs
from repro.model.zoo import BGE_M3, PAPER_MODELS, QWEN3_0_6B


class TestPaperAnchors:
    def test_qwen06b_layer_params_about_15m(self):
        """§2.2: Qwen3-Reranker-0.6B has ≈15 M weights per layer."""
        params = costs.layer_param_count(QWEN3_0_6B)
        assert 12e6 < params < 18e6

    def test_qwen06b_layers_dominate_weights(self):
        """§2.2: 28 transformer layers account for >70 % of weights."""
        layers = costs.all_layer_weight_bytes(QWEN3_0_6B)
        total = costs.total_weight_bytes(QWEN3_0_6B)
        assert layers / total > 0.70

    def test_qwen06b_embedding_table_about_296mb(self):
        """§4.4: the fp16 embedding table is ≈296 MB."""
        table_mb = costs.embedding_table_bytes(QWEN3_0_6B) / 1e6
        assert 280 < table_mb < 320

    def test_two_streamed_layers_about_60mb(self):
        """§4.4: two active streamed layers cost ≈60 MB."""
        two_layers_mb = 2 * costs.layer_weight_bytes(QWEN3_0_6B) / 1e6
        assert 45 < two_layers_mb < 75

    def test_intermediates_60cand_about_473mb(self):
        """§4.3: 60 candidates × 512 tokens add ≈473 MB per layer."""
        per_cand = costs.intermediate_bytes_per_candidate(QWEN3_0_6B, 512)
        total_mb = 60 * per_cand / MiB
        assert 350 < total_mb < 600


class TestLayerAccounting:
    def test_encoder_ffn_smaller_than_decoder(self):
        """Encoders carry 2 FFN matrices, decoders 3 (SwiGLU gate)."""
        d, f = BGE_M3.hidden_dim, BGE_M3.ffn_dim
        encoder_params = costs.layer_param_count(BGE_M3)
        assert encoder_params == 4 * d * d + 2 * d * f + 2 * d

    def test_quantized_layer_about_4x_smaller(self):
        fp16 = costs.layer_weight_bytes(QWEN3_0_6B, quantized=False)
        w4 = costs.layer_weight_bytes(QWEN3_0_6B, quantized=True)
        assert 3.0 < fp16 / w4 < 4.0  # scale overhead keeps it under 4×

    def test_embedding_not_quantized(self):
        """GPTQ keeps embedding rows fp16 — §4.4's cache matters even
        for quant runs."""
        assert costs.embedding_table_bytes(
            QWEN3_0_6B, quantized=True
        ) == costs.embedding_table_bytes(QWEN3_0_6B, quantized=False)

    def test_all_layer_bytes_is_sum(self):
        assert costs.all_layer_weight_bytes(QWEN3_0_6B) == (
            QWEN3_0_6B.num_layers * costs.layer_weight_bytes(QWEN3_0_6B)
        )

    def test_total_weight_bytes_composition(self):
        total = costs.total_weight_bytes(QWEN3_0_6B)
        assert total == (
            costs.all_layer_weight_bytes(QWEN3_0_6B)
            + costs.embedding_table_bytes(QWEN3_0_6B)
            + costs.classifier_weight_bytes(QWEN3_0_6B)
        )


class TestFlops:
    def test_layer_flops_scale_superlinearly_in_seq_len(self):
        """Attention's L² term makes doubling length more than double."""
        short = costs.layer_flops_per_candidate(QWEN3_0_6B, 256)
        long = costs.layer_flops_per_candidate(QWEN3_0_6B, 512)
        assert long > 2 * short

    def test_layer_flops_positive_and_monotone(self):
        prev = 0.0
        for seq_len in (64, 128, 256, 512):
            flops = costs.layer_flops_per_candidate(QWEN3_0_6B, seq_len)
            assert flops > prev
            prev = flops

    def test_invalid_seq_len_rejected(self):
        with pytest.raises(ValueError):
            costs.layer_flops_per_candidate(QWEN3_0_6B, 0)

    def test_classifier_flops_tiny(self):
        assert costs.classifier_flops_per_candidate(QWEN3_0_6B) == 2.0 * QWEN3_0_6B.hidden_dim

    def test_forward_flops_linear_in_candidates(self):
        one = costs.forward_flops(QWEN3_0_6B, 1, 512)
        twenty = costs.forward_flops(QWEN3_0_6B, 20, 512)
        assert twenty == pytest.approx(20 * one)

    def test_forward_flops_anchor_magnitude(self):
        """20 candidates × 512 tokens on the 0.6 B model ≈ 12 TFLOP
        (the Figure 1 / §5 calibration anchor)."""
        tflop = costs.forward_flops(QWEN3_0_6B, 20, 512) / 1e12
        assert 8 < tflop < 18


class TestModelOrdering:
    def test_bigger_models_cost_more(self):
        """Weight bytes and per-layer FLOPs rise with parameter count."""
        by_weights = sorted(PAPER_MODELS, key=costs.total_weight_bytes)
        names = [m.name for m in by_weights]
        assert names.index("qwen3-reranker-8b") == len(names) - 1
        assert names.index("bge-reranker-v2-m3") <= 1

    def test_hidden_state_bytes_formula(self):
        assert costs.hidden_state_bytes_per_candidate(QWEN3_0_6B, 512) == (
            512 * QWEN3_0_6B.hidden_dim * QWEN3_0_6B.dtype_bytes
        )
