"""Property-style invariants every event log obeys (DESIGN.md §10).

Swept across seeded scenario variations rather than a single golden
run, three structural laws:

* **Monotonicity** — each request's events are non-decreasing in clock
  time within one time axis (hedge events excepted: a hedge is stamped
  at the backup's start instant, which precedes the primary's
  completion by construction — it is instead bounded by the request's
  admit and terminal instants).
* **Exactly-one terminal** — every admitted request terminates in
  exactly one of complete/shed/cancel/fail *per admission* (a device
  re-admitted after failover legitimately admits twice — and must then
  terminate twice).
* **Refcount balance** — shared weight-plane acquires and releases
  balance to zero, even through cancellations and crashes.
"""

import pytest

from repro.core.events import SERVING_TIERS, TERMINAL_KINDS, EventLog
from repro.core.trace import TraceSpec, run_trace
from repro.harness.traces import SCENARIOS, build_scenario
from repro.data.datasets import get_dataset
from repro.core.trace import TraceRequest

ALL_SCENARIOS = tuple(sorted(SCENARIOS))

#: Seeded sweep: deterministic workload variations of the device tier
#: (arrival spread, deadlines, cancels) — poor-man's property testing
#: without a property-testing dependency.
SWEEP_CASES = tuple(range(4))


def _group_key(event):
    """The (time-axis, request) identity an ordering claim applies to.

    fleet/trace events all ride the coordinator clock; device-side
    tiers ride per-replica clocks, so the replica is part of the key.
    """
    if event.tier in ("fleet", "trace"):
        return (event.tier, event.request)
    return (event.tier, event.replica, event.request)


def check_monotone(log: EventLog) -> None:
    last: dict = {}
    for event in log:
        if event.request is None or event.kind == "hedge":
            continue
        key = _group_key(event)
        if key in last:
            assert event.at >= last[key] - 1e-12, (
                f"clock went backwards for {key}: {event.kind}@{event.at} "
                f"after t={last[key]}"
            )
        last[key] = event.at


def check_hedge_bounds(log: EventLog) -> None:
    """A hedge starts after its admit and its arm instant; a *winning*
    hedge also starts before the request's terminal.  (A losing hedge
    may start later — its backup replica can be busy past the
    primary's finish; the race then charges no extra latency.)"""
    admits = {
        e.request: e.at for e in log if e.tier == "fleet" and e.kind == "admit"
    }
    terminals = {
        e.request: e.at
        for e in log
        if e.tier == "fleet" and e.kind in TERMINAL_KINDS
    }
    hedges = [e for e in log if e.kind == "hedge"]
    for event in hedges:
        assert admits[event.request] <= event.at
        assert event.data["fire_at"] <= event.at + 1e-12
        if event.data["won"]:
            assert event.at <= terminals[event.request] + 1e-12


def check_exactly_one_terminal(log: EventLog) -> None:
    for tier in SERVING_TIERS:
        admits: dict = {}
        terminals: dict = {}
        for event in log:
            if event.tier != tier or event.request is None:
                continue
            key = _group_key(event)
            if event.kind == "admit":
                admits[key] = admits.get(key, 0) + 1
            elif event.kind in TERMINAL_KINDS:
                terminals[key] = terminals.get(key, 0) + 1
        assert set(admits) == set(terminals), (
            f"{tier}: admitted {set(admits) - set(terminals)} never terminated; "
            f"{set(terminals) - set(admits)} terminated without admission"
        )
        for key, count in admits.items():
            assert terminals[key] == count, (
                f"{tier}: {key} admitted {count}x but terminated {terminals[key]}x"
            )


def check_plane_balance(log: EventLog) -> None:
    acquires = sum(1 for e in log if e.kind == "acquire")
    releases = sum(1 for e in log if e.kind == "release")
    assert acquires == releases, (
        f"weight plane leaked: {acquires} acquires vs {releases} releases"
    )
    # And per (replica, layer), refcounts drain back to zero.
    open_counts: dict = {}
    for event in log:
        if event.kind == "acquire":
            key = (event.replica, event.data["layer"])
            open_counts[key] = open_counts.get(key, 0) + 1
        elif event.kind == "release":
            key = (event.replica, event.data["layer"])
            open_counts[key] = open_counts.get(key, 0) - 1
            assert open_counts[key] >= 0, f"release before acquire for {key}"
    assert all(count == 0 for count in open_counts.values()), (
        f"unbalanced layers: { {k: v for k, v in open_counts.items() if v} }"
    )


@pytest.fixture(scope="module")
def scenario_logs():
    return {
        name: run_trace(*build_scenario(name, quick=True)).log
        for name in ALL_SCENARIOS
    }


class TestScenarioInvariants:
    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_monotone_per_request(self, scenario_logs, name):
        check_monotone(scenario_logs[name])

    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_hedges_bounded_by_lifecycle(self, scenario_logs, name):
        check_hedge_bounds(scenario_logs[name])

    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_exactly_one_terminal_per_admission(self, scenario_logs, name):
        check_exactly_one_terminal(scenario_logs[name])

    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_plane_refcounts_balance(self, scenario_logs, name):
        check_plane_balance(scenario_logs[name])

    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_seq_is_emission_order(self, scenario_logs, name):
        log = scenario_logs[name]
        assert [e.seq for e in log] == list(range(len(log)))


class TestSweptInvariants:
    """Seeded workload variations on the shared-plane device tier —
    the tier where cancellation, shedding and refcounting interact."""

    @pytest.mark.parametrize("case", SWEEP_CASES)
    def test_device_tier_sweep(self, case):
        queries = get_dataset("nfcorpus").queries(3 + case, num_candidates=4)
        spec = TraceSpec(
            tier="device",
            device={
                "policy": ("fusion", "round_robin")[case % 2],
                "max_concurrency": 2 + case % 2,
                "shared_weights": True,
            },
        )
        requests = []
        for i, query in enumerate(queries):
            requests.append(
                TraceRequest(
                    query=query,
                    k=2,
                    request_id=f"s{case}-{i}",
                    arrival=0.0015 * i,
                    # Rotate the drop modes through the sweep so every
                    # terminal kind appears across the matrix.
                    deadline=1e-4 if (i + case) % 3 == 0 else None,
                    cancel_at=0.04 if (i + case) % 3 == 1 else None,
                )
            )
        log = run_trace(spec, requests).log
        check_monotone(log)
        check_exactly_one_terminal(log)
        check_plane_balance(log)

    def test_crash_preserves_invariants(self):
        """A mid-stream replica crash must not break any law: the dying
        pass releases its plane refcounts, the victims re-admit on a
        healthy replica, and every admission still terminates."""
        spec, requests = build_scenario("resilience", quick=True)
        log = run_trace(spec, requests).log
        assert any(e.kind == "fault" for e in log)
        check_monotone(log)
        check_hedge_bounds(log)
        check_exactly_one_terminal(log)
        check_plane_balance(log)
