"""Unit tests for the scoring head."""

import numpy as np

from repro.model.classifier import Classifier
from repro.model.zoo import BGE_M3, QWEN3_0_6B


class TestReadoutPositions:
    def test_decoder_reads_last_valid_token(self):
        clf = Classifier(QWEN3_0_6B)
        positions = clf.readout_positions(np.array([5, 12, 1]))
        assert positions.tolist() == [4, 11, 0]

    def test_decoder_clamps_zero_length(self):
        clf = Classifier(QWEN3_0_6B)
        assert clf.readout_positions(np.array([0])).tolist() == [0]

    def test_encoder_reads_cls_position(self):
        clf = Classifier(BGE_M3)
        positions = clf.readout_positions(np.array([5, 12]))
        assert positions.tolist() == [0, 0]


class TestScore:
    def test_score_reads_channel_zero_of_readout(self):
        clf = Classifier(QWEN3_0_6B)
        n, seq, dim = 3, 8, QWEN3_0_6B.sim_hidden
        hidden = np.zeros((n, seq, dim))
        lengths = np.array([3, 8, 5])
        for i, length in enumerate(lengths):
            hidden[i, length - 1, 0] = 10.0 + i
        scores = clf.score(hidden, lengths)
        assert scores.tolist() == [10.0, 11.0, 12.0]

    def test_other_channels_ignored(self):
        clf = Classifier(QWEN3_0_6B)
        hidden = np.zeros((1, 4, QWEN3_0_6B.sim_hidden))
        hidden[0, 3, 1:] = 99.0  # junk everywhere except channel 0
        assert clf.score(hidden, np.array([4]))[0] == 0.0

    def test_encoder_scores_from_first_position(self):
        clf = Classifier(BGE_M3)
        hidden = np.zeros((1, 4, BGE_M3.sim_hidden))
        hidden[0, 0, 0] = 7.0
        assert clf.score(hidden, np.array([4]))[0] == 7.0
