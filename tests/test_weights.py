"""Unit tests for the WeightStore."""

import numpy as np
import pytest

from repro.model import costs
from repro.model.weights import WeightStore
from repro.model.zoo import QWEN3_0_6B


@pytest.fixture
def store():
    return WeightStore(QWEN3_0_6B)


class TestBlobSizes:
    def test_layer_nbytes_matches_costs(self, store):
        assert store.layer_nbytes(0) == costs.layer_weight_bytes(QWEN3_0_6B)

    def test_quantized_store_smaller(self):
        fp16 = WeightStore(QWEN3_0_6B, quantized=False)
        w4 = WeightStore(QWEN3_0_6B, quantized=True)
        assert w4.layer_nbytes(0) < fp16.layer_nbytes(0)
        assert w4.total_nbytes() < fp16.total_nbytes()

    def test_embedding_row_nbytes(self, store):
        assert store.embedding_row_nbytes() == QWEN3_0_6B.hidden_dim * 2

    def test_layer_bounds_checked(self, store):
        with pytest.raises(IndexError):
            store.layer_nbytes(QWEN3_0_6B.num_layers)
        with pytest.raises(IndexError):
            store.layer_nbytes(-1)


class TestTags:
    def test_layer_tags_unique(self, store):
        tags = {store.layer_tag(i) for i in range(QWEN3_0_6B.num_layers)}
        assert len(tags) == QWEN3_0_6B.num_layers

    def test_tags_carry_model_name(self, store):
        assert QWEN3_0_6B.name in store.layer_tag(0)
        assert QWEN3_0_6B.name in store.embedding_tag()
        assert QWEN3_0_6B.name in store.classifier_tag()


class TestNumericsMaterialisation:
    def test_load_layer_deterministic_across_stores(self):
        a = WeightStore(QWEN3_0_6B).load_layer(5)
        b = WeightStore(QWEN3_0_6B).load_layer(5)
        assert np.array_equal(a.wq, b.wq)

    def test_load_layer_cached(self, store):
        assert store.load_layer(2) is store.load_layer(2)

    def test_embedding_row_deterministic(self, store):
        assert np.array_equal(store.embedding_row(100), store.embedding_row(100))

    def test_embedding_row_immutable(self, store):
        row = store.embedding_row(50)
        with pytest.raises(ValueError):
            row[0] = 1.0

    def test_embedding_row_bounds(self, store):
        with pytest.raises(ValueError):
            store.embedding_row(-1)
        with pytest.raises(ValueError):
            store.embedding_row(QWEN3_0_6B.vocab_size)

    def test_embedding_rows_shape(self, store):
        tokens = np.array([[1, 2], [3, 4], [5, 6]])
        rows = store.embedding_rows(tokens)
        assert rows.shape == (3, 2, QWEN3_0_6B.sim_hidden)

    def test_embedding_rows_match_single_lookup(self, store):
        tokens = np.array([7, 8])
        rows = store.embedding_rows(tokens)
        assert np.array_equal(rows[0], store.embedding_row(7))
        assert np.array_equal(rows[1], store.embedding_row(8))
