"""Unit tests for the LLM generation cost models."""

import pytest

from repro.apps.llm import (
    MOBIMIND_VLM_7B,
    QWEN3_4B_INSTRUCT_W4,
    QWEN3_32B,
    LLMSpec,
    OnDeviceLLM,
    RemoteLLM,
    ServerProfile,
)
from repro.device.executor import DeviceExecutor
from repro.device.platforms import NVIDIA_5070, NVIDIA_A800


@pytest.fixture
def executor():
    return DeviceExecutor(NVIDIA_5070.create())


class TestLLMSpec:
    def test_params_magnitudes(self):
        assert 25e9 < QWEN3_32B.params() < 40e9
        assert 3e9 < QWEN3_4B_INSTRUCT_W4.params() < 5e9
        assert 6e9 < MOBIMIND_VLM_7B.params() < 9e9

    def test_quantized_weights_smaller(self):
        fp16 = LLMSpec(name="x", num_layers=36, hidden_dim=2560, ffn_dim=9728)
        assert QWEN3_4B_INSTRUCT_W4.weight_bytes() < 0.45 * fp16.weight_bytes()

    def test_prefill_flops_superlinear(self):
        assert QWEN3_32B.prefill_flops(2000) > 2 * QWEN3_32B.prefill_flops(1000)

    def test_decode_flops_grow_with_context(self):
        assert QWEN3_32B.decode_flops_per_token(4000) > QWEN3_32B.decode_flops_per_token(100)

    def test_kv_bytes_positive(self):
        assert QWEN3_32B.kv_bytes_per_token() > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            LLMSpec(name="bad", num_layers=0, hidden_dim=10, ffn_dim=10)
        with pytest.raises(ValueError):
            QWEN3_32B.prefill_flops(-1)


class TestOnDeviceLLM:
    def test_prepare_loads_weights(self, executor):
        llm = OnDeviceLLM(QWEN3_4B_INSTRUCT_W4, executor)
        llm.prepare()
        assert executor.device.memory.in_use == QWEN3_4B_INSTRUCT_W4.weight_bytes()
        assert executor.now > 0  # load time charged

    def test_generate_before_prepare_rejected(self, executor):
        llm = OnDeviceLLM(QWEN3_4B_INSTRUCT_W4, executor)
        with pytest.raises(RuntimeError):
            llm.generate(100, 10)

    def test_generate_advances_clock(self, executor):
        llm = OnDeviceLLM(QWEN3_4B_INSTRUCT_W4, executor)
        llm.prepare()
        before = executor.now
        result = llm.generate(1000, 16)
        assert executor.now - before == pytest.approx(result.total_seconds)

    def test_longer_prompts_cost_more(self, executor):
        llm = OnDeviceLLM(QWEN3_4B_INSTRUCT_W4, executor)
        llm.prepare()
        short = llm.generate(1000, 0).prefill_seconds
        long = llm.generate(8000, 0).prefill_seconds
        assert long > 6 * short

    def test_kv_freed_after_generation(self, executor):
        llm = OnDeviceLLM(QWEN3_4B_INSTRUCT_W4, executor)
        llm.prepare()
        llm.generate(1000, 8)
        assert executor.device.memory.in_use == QWEN3_4B_INSTRUCT_W4.weight_bytes()

    def test_kv_counted_in_peak(self, executor):
        llm = OnDeviceLLM(QWEN3_4B_INSTRUCT_W4, executor)
        llm.prepare()
        llm.generate(10_000, 4)
        peak_kv = executor.device.memory.stats().peak_by_category.get("kv", 0)
        assert peak_kv >= 10_000 * QWEN3_4B_INSTRUCT_W4.kv_bytes_per_token()

    def test_release(self, executor):
        llm = OnDeviceLLM(QWEN3_4B_INSTRUCT_W4, executor)
        llm.prepare()
        llm.release()
        assert executor.device.memory.in_use == 0

    def test_validation(self, executor):
        llm = OnDeviceLLM(QWEN3_4B_INSTRUCT_W4, executor)
        llm.prepare()
        with pytest.raises(ValueError):
            llm.generate(0, 4)
        with pytest.raises(ValueError):
            llm.generate(100, -1)

    def test_prepare_idempotent(self, executor):
        llm = OnDeviceLLM(QWEN3_4B_INSTRUCT_W4, executor)
        llm.prepare()
        in_use = executor.device.memory.in_use
        llm.prepare()
        assert executor.device.memory.in_use == in_use


class TestRemoteLLM:
    def test_no_device_memory_charged(self, executor):
        llm = RemoteLLM(QWEN3_32B, executor)
        llm.generate(2000, 8)
        assert executor.device.memory.in_use == 0

    def test_clock_advances_by_server_time(self, executor):
        llm = RemoteLLM(QWEN3_32B, executor)
        before = executor.now
        result = llm.generate(2000, 8)
        assert executor.now - before == pytest.approx(result.total_seconds)

    def test_includes_network_rtt(self, executor):
        fast_net = RemoteLLM(QWEN3_32B, executor, ServerProfile(network_rtt=0.0))
        slow_net = RemoteLLM(QWEN3_32B, executor, ServerProfile(network_rtt=0.1))
        assert (
            slow_net.generate(1000, 0).prefill_seconds
            - fast_net.generate(1000, 0).prefill_seconds
        ) == pytest.approx(0.1)

    def test_first_token_is_one_decode_step(self, executor):
        llm = RemoteLLM(QWEN3_32B, executor)
        result = llm.first_token(1500)
        assert result.output_tokens == 1

    def test_server_faster_than_edge(self):
        """The A800 server generates far faster than the edge device —
        why the paper offloads generation in RAG/AM."""
        edge_exec = DeviceExecutor(NVIDIA_5070.create())
        server_exec = DeviceExecutor(NVIDIA_A800.create())
        on_device = OnDeviceLLM(QWEN3_4B_INSTRUCT_W4, edge_exec)
        on_device.prepare()
        edge_time = on_device.generate(2000, 16).total_seconds
        remote = RemoteLLM(QWEN3_4B_INSTRUCT_W4, server_exec)
        server_time = remote.generate(2000, 16).total_seconds
        assert server_time < edge_time

    def test_vlm_too_big_for_edge_memory(self):
        """The fp16 7 B VLM cannot even fit the 8 GiB edge budget —
        remote serving is forced, not optional."""
        executor = DeviceExecutor(NVIDIA_5070.create())
        from repro.device.memory import OutOfMemoryError

        llm = OnDeviceLLM(MOBIMIND_VLM_7B, executor)
        with pytest.raises(OutOfMemoryError):
            llm.prepare()

    def test_validation(self, executor):
        llm = RemoteLLM(QWEN3_32B, executor)
        with pytest.raises(ValueError):
            llm.generate(0, 4)
        with pytest.raises(ValueError):
            ServerProfile(flops_per_second=0)


class TestGenerationResult:
    def test_first_token_latency(self, executor):
        llm = RemoteLLM(QWEN3_32B, executor)
        result = llm.generate(1000, 10)
        assert result.first_token_seconds < result.total_seconds
        assert result.first_token_seconds > result.prefill_seconds

    def test_zero_output_first_token_is_prefill(self, executor):
        llm = RemoteLLM(QWEN3_32B, executor)
        result = llm.generate(1000, 0)
        assert result.first_token_seconds == result.prefill_seconds
