"""End-to-end integration tests: the paper's headline claims in one place.

These run the full stack (engines over the simulated platforms) and
assert the qualitative results of the evaluation section.  They act as
a regression net over the interaction of all four techniques.
"""

import numpy as np
import pytest

from repro.core.config import PrismConfig
from repro.data.datasets import ALL_DATASETS, get_dataset
from repro.harness.runner import run_system
from repro.model.zoo import BGE_M3, BGE_MINICPM, QWEN3_0_6B, QWEN3_4B, QWEN3_8B


@pytest.fixture(scope="module")
def queries():
    return get_dataset("wikipedia").queries(3, 20)


class TestHeadlineClaims:
    def test_prism_wins_latency_and_memory_simultaneously(self, queries):
        """The paper's central claim: PRISM is both the fastest and the
        smallest — a dual win no baseline offers (Figure 9 text)."""
        stats = {
            system: run_system(system, QWEN3_0_6B, "nvidia_5070", queries, 10)
            for system in ("hf", "hf_offload", "hf_quant", "prism")
        }
        assert all(stats["prism"].mean_latency < s.mean_latency
                   for name, s in stats.items() if name != "prism")
        assert all(stats["prism"].peak_mib < s.peak_mib
                   for name, s in stats.items() if name != "prism")

    def test_memory_saving_baselines_trade_latency(self, queries):
        """HF-Offload and HF-Quant save memory but cost latency."""
        hf = run_system("hf", QWEN3_0_6B, "nvidia_5070", queries, 10)
        offload = run_system("hf_offload", QWEN3_0_6B, "nvidia_5070", queries, 10)
        quant = run_system("hf_quant", QWEN3_0_6B, "nvidia_5070", queries, 10)
        assert offload.peak_mib < hf.peak_mib and offload.mean_latency > hf.mean_latency
        assert quant.peak_mib < hf.peak_mib and quant.mean_latency > hf.mean_latency

    def test_prism_enables_models_that_oom_under_hf(self, queries):
        """Qwen3-4B/8B OOM under vanilla HF on 8 GiB devices but run
        under PRISM (Table 3's OOM rows)."""
        for model in (QWEN3_4B, QWEN3_8B):
            assert run_system("hf", model, "nvidia_5070", queries, 10).oom
            assert not run_system("prism", model, "nvidia_5070", queries, 10).oom

    def test_quant_and_prism_compose(self, queries):
        """PRISM Quant beats HF Quant on both axes (§6.2, orthogonality)."""
        hf_quant = run_system("hf_quant", QWEN3_0_6B, "nvidia_5070", queries, 10)
        prism_quant = run_system("prism_quant", QWEN3_0_6B, "nvidia_5070", queries, 10)
        assert prism_quant.mean_latency < hf_quant.mean_latency
        assert prism_quant.peak_mib < hf_quant.peak_mib

    def test_precision_preserved_across_models(self, queries):
        """Pruning does not change Precision@K materially (Table 3)."""
        for model in (QWEN3_0_6B, BGE_M3, BGE_MINICPM):
            hf = run_system("hf_offload", model, "nvidia_5070", queries, 10)
            prism = run_system("prism", model, "nvidia_5070", queries, 10)
            assert abs(prism.mean_precision - hf.mean_precision) < 0.08


class TestCrossEngineConsistency:
    def test_all_baselines_agree_on_ranking(self, queries):
        """HF, HF-Offload and HF-Quant execute the same model — their
        top-K must be identical (they differ only in residency policy)."""
        tops = {}
        for system in ("hf", "hf_offload", "hf_quant"):
            stats = run_system(
                system, QWEN3_0_6B, "nvidia_5070", queries, 10, keep_results=True
            )
            tops[system] = [r.top_indices.tolist() for r in stats.results]
        assert tops["hf"] == tops["hf_offload"] == tops["hf_quant"]

    def test_prism_topk_agrees_with_baseline(self, queries):
        hf = run_system("hf", QWEN3_0_6B, "nvidia_5070", queries, 10, keep_results=True)
        prism = run_system("prism", QWEN3_0_6B, "nvidia_5070", queries, 10, keep_results=True)
        for a, b in zip(hf.results, prism.results):
            overlap = len(set(a.top_indices.tolist()) & set(b.top_indices.tolist()))
            assert overlap >= 8  # at most borderline swaps

    def test_platform_changes_latency_not_ranking(self, queries):
        nvidia = run_system("prism", QWEN3_0_6B, "nvidia_5070", queries, 10, keep_results=True)
        apple = run_system("prism", QWEN3_0_6B, "apple_m2", queries, 10, keep_results=True)
        for a, b in zip(nvidia.results, apple.results):
            assert set(a.top_indices.tolist()) == set(b.top_indices.tolist())
        assert apple.mean_latency > nvidia.mean_latency


class TestDatasetSweep:
    def test_prism_never_slower_than_hf_on_any_dataset(self):
        """The Table 3 reduction ranges never go negative."""
        for dataset in ALL_DATASETS[::3]:  # sample every third dataset
            queries = get_dataset(dataset).queries(2, 20)
            hf = run_system("hf", QWEN3_0_6B, "nvidia_5070", queries, 10)
            prism = run_system("prism", QWEN3_0_6B, "nvidia_5070", queries, 10)
            # 2 % tolerance: on the hardest single-relevant pools
            # (ArguAna) pruning barely fires and PRISM only ties.
            assert prism.mean_latency <= 1.02 * hf.mean_latency, dataset

    def test_reduction_varies_by_dataset_difficulty(self):
        """Easily-separated corpora prune earlier → bigger reductions;
        this spread is Table 3's min–max range."""
        reductions = {}
        for dataset in ("wikipedia", "webis-touche2020"):
            queries = get_dataset(dataset).queries(3, 20)
            hf = run_system("hf", QWEN3_0_6B, "nvidia_5070", queries, 10)
            prism = run_system("prism", QWEN3_0_6B, "nvidia_5070", queries, 10)
            reductions[dataset] = 1 - prism.mean_latency / hf.mean_latency
        # Wikipedia's cleanly separated tiers (separation 0.88) prune
        # earlier than the hard-to-separate Touché pools (0.50), at
        # comparable document lengths.
        assert reductions["wikipedia"] > reductions["webis-touche2020"]


class TestFailureInjection:
    def test_tight_budget_platform_ooms_gracefully(self, queries):
        """A custom device with a tiny budget OOMs through run_system's
        reporting path instead of crashing."""
        from repro.device.memory import GiB
        from repro.device.platforms import (
            NVIDIA_5070,
            DeviceProfile,
            register_profile,
        )

        register_profile(
            DeviceProfile(
                name="tiny_budget_device",
                compute=NVIDIA_5070.compute,
                ssd=NVIDIA_5070.ssd,
                memory_budget_bytes=GiB // 2,
            )
        )
        stats = run_system("hf", QWEN3_0_6B, "tiny_budget_device", queries, 10)
        assert stats.oom

    def test_prism_survives_medium_budget(self, queries):
        """PRISM's streamed residency fits where full residency cannot."""
        from repro.device.memory import GiB
        from repro.device.platforms import (
            NVIDIA_5070,
            DeviceProfile,
            register_profile,
        )

        register_profile(
            DeviceProfile(
                name="one_gib_device",
                compute=NVIDIA_5070.compute,
                ssd=NVIDIA_5070.ssd,
                memory_budget_bytes=1 * GiB,
            )
        )
        assert run_system("hf", QWEN3_0_6B, "one_gib_device", queries, 10).oom
        assert not run_system("prism", QWEN3_0_6B, "one_gib_device", queries, 10).oom

    def test_slow_ssd_surfaces_as_io_stall(self, queries):
        """Halving SSD bandwidth breaks the overlap window; the loss
        shows up as I/O stalls, not silent latency."""
        from repro.device.platforms import NVIDIA_5070, DeviceProfile, register_profile
        from repro.device.ssd import SSDModel

        register_profile(
            DeviceProfile(
                name="slow_ssd_device",
                compute=NVIDIA_5070.compute,
                ssd=SSDModel(read_bandwidth=0.2e9, write_bandwidth=0.2e9),
                memory_budget_bytes=NVIDIA_5070.memory_budget_bytes,
            )
        )
        fast = run_system("prism", QWEN3_0_6B, "nvidia_5070", queries, 10)
        slow = run_system("prism", QWEN3_0_6B, "slow_ssd_device", queries, 10)
        assert slow.io_stall_seconds > fast.io_stall_seconds
        assert slow.mean_latency > fast.mean_latency


class TestThresholdCalibrationEndToEnd:
    def test_calibrated_threshold_meets_target_on_fresh_queries(self):
        """Calibrate on one set of requests, verify on another —
        the §4.1 precision-target mode works out of sample."""
        from repro.core.calibration import ThresholdCalibrator
        from repro.core.metrics import top_k_overlap
        from repro.data.workloads import build_batch
        from repro.device.platforms import get_profile
        from repro.harness.runner import shared_model, shared_tokenizer

        tokenizer = shared_tokenizer(QWEN3_0_6B)
        train = [
            build_batch(q, tokenizer, 512)
            for q in get_dataset("wikipedia").queries(3, 20)
        ]
        test = [
            build_batch(q, tokenizer, 512)
            for q in get_dataset("nq").queries(3, 20)
        ]
        calibrator = ThresholdCalibrator(
            shared_model(QWEN3_0_6B),
            get_profile("nvidia_5070"),
            precision_target=0.85,
            step=0.1,
            max_rounds=6,
        )
        result = calibrator.calibrate(
            train, k=10, base_config=PrismConfig(numerics=False)
        )
        config = PrismConfig(numerics=False).with_threshold(result.threshold)
        overlaps = []
        for batch in test:
            truth = calibrator._ground_truth(batch, 10, config)
            from repro.core.engine import PrismEngine

            device = get_profile("nvidia_5070").create()
            engine = PrismEngine(shared_model(QWEN3_0_6B), device, config)
            engine.prepare()
            selected = engine.rerank(batch, 10).top_indices
            overlaps.append(top_k_overlap(selected, truth, 10))
        assert float(np.mean(overlaps)) >= 0.7
