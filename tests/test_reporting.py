"""Unit tests for text-table reporting."""

import pytest

from repro.harness.reporting import format_series, format_table, ms, pct


class TestFormatTable:
    def test_basic_alignment(self):
        table = format_table(("name", "value"), [("a", 1), ("long-name", 2)])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4  # header, rule, 2 rows
        # All lines equal width when stripped of trailing spaces.
        widths = {len(line.rstrip()) <= len(lines[0]) for line in lines}
        assert widths == {True}

    def test_title_prepended(self):
        table = format_table(("a",), [("x",)], title="My Table")
        assert table.splitlines()[0] == "My Table"

    def test_floats_formatted(self):
        table = format_table(("v",), [(0.123456,)])
        assert "0.123" in table

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [("only-one",)])

    def test_empty_rows_ok(self):
        table = format_table(("a", "b"), [])
        assert "a" in table


class TestFormatSeries:
    def test_pairs_rendered(self):
        series = format_series("latency", [1, 2], [10.0, 20.0])
        assert series.startswith("latency:")
        assert "(1, 10.000)" in series

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            format_series("x", [1, 2], [1.0])


class TestScalarFormatters:
    def test_pct(self):
        assert pct(0.892) == "89.2%"
        assert pct(0.0) == "0.0%"

    def test_ms(self):
        assert ms(5.754) == "5754.0ms"
        assert ms(0.0081) == "8.1ms"
