"""Tests for the step-based execution core and DeviceScheduler (DESIGN.md §6)."""

import numpy as np
import pytest

from repro.baselines import (
    HFEngine,
    HFOffloadEngine,
    HFOffloadQuantEngine,
    HFQuantEngine,
    prism_quant_engine,
)
from repro.core.config import PrismConfig
from repro.core.engine import PrismEngine
from repro.core.scheduler import (
    LANE_BATCH,
    LANE_INTERACTIVE,
    DeviceScheduler,
    SchedulerConfig,
)
from repro.core.service import SemanticSelectionService
from repro.data.datasets import get_dataset
from repro.data.workloads import build_batch
from repro.device.platforms import get_profile
from repro.harness.runner import shared_model, shared_tokenizer
from repro.model.zoo import QWEN3_0_6B


def make_batch(num_candidates=12, query_idx=0):
    query = get_dataset("wikipedia").queries(query_idx + 1, num_candidates)[query_idx]
    tokenizer = shared_tokenizer(QWEN3_0_6B)
    return build_batch(query, tokenizer, QWEN3_0_6B.max_seq_len)


def make_prism(config=None):
    device = get_profile("nvidia_5070").create()
    engine = PrismEngine(
        shared_model(QWEN3_0_6B), device, config or PrismConfig(numerics=False)
    )
    engine.prepare()
    return engine


#: name -> fresh prepared engine, covering every engine family.
ENGINE_FACTORIES = {
    "prism": make_prism,
    "prism_quant": lambda: _prepared_prism_quant(),
    "hf": lambda: _prepared(HFEngine),
    "hf_offload": lambda: _prepared(HFOffloadEngine),
    "hf_quant": lambda: _prepared(HFQuantEngine),
    "hf_offload_quant": lambda: _prepared(HFOffloadQuantEngine),
}


def _prepared(engine_cls):
    device = get_profile("nvidia_5070").create()
    engine = engine_cls(shared_model(QWEN3_0_6B), device, numerics=False)
    engine.prepare()
    return engine


def _prepared_prism_quant():
    device = get_profile("nvidia_5070").create()
    engine = prism_quant_engine(
        shared_model(QWEN3_0_6B), device, PrismConfig.quant(numerics=False)
    )
    engine.prepare()
    return engine


class TestTaskAPI:
    def test_start_before_prepare_rejected(self):
        device = get_profile("nvidia_5070").create()
        engine = PrismEngine(shared_model(QWEN3_0_6B), device, PrismConfig(numerics=False))
        with pytest.raises(RuntimeError):
            engine.start(make_batch(), 5)

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            make_prism().start(make_batch(), 0)

    def test_start_charges_nothing_until_stepped(self):
        """A queued task must not consume device time or memory."""
        engine = make_prism()
        now, in_use = engine.executor.now, engine.device.memory.in_use
        engine.start(make_batch(), 5)
        assert engine.executor.now == now
        assert engine.device.memory.in_use == in_use

    def test_step_count_is_layers_plus_finalisation(self):
        """HF runs every layer; one finalisation step closes the task."""
        engine = _prepared(HFEngine)
        task = engine.start(make_batch(num_candidates=8), 5)
        task.run()
        assert task.steps_taken == QWEN3_0_6B.num_layers + 1
        assert task.result.layers_executed == QWEN3_0_6B.num_layers

    def test_result_before_completion_raises(self):
        engine = make_prism()
        task = engine.start(make_batch(), 5)
        with pytest.raises(RuntimeError):
            _ = task.result
        task.step()
        with pytest.raises(RuntimeError):
            _ = task.result

    def test_step_after_completion_raises(self):
        engine = _prepared(HFEngine)
        task = engine.start(make_batch(num_candidates=8), 5)
        task.run()
        with pytest.raises(RuntimeError):
            task.step()

    def test_manual_stepping_equals_rerank(self):
        batch = make_batch()
        stepped = make_prism().start(batch, 5).run()
        blocking = make_prism().rerank(batch, 5)
        assert np.array_equal(stepped.top_indices, blocking.top_indices)
        assert np.array_equal(stepped.top_scores, blocking.top_scores)
        assert stepped.latency_seconds == pytest.approx(blocking.latency_seconds)


class TestRequestedK:
    def test_clamp_recorded(self):
        """The silent k-clamp is now observable on the result."""
        result = make_prism().rerank(make_batch(num_candidates=5), 50)
        assert result.k == 5
        assert result.requested_k == 50
        assert result.k_clamped

    def test_unclamped_request(self):
        result = make_prism().rerank(make_batch(num_candidates=12), 5)
        assert result.k == 5
        assert result.requested_k == 5
        assert not result.k_clamped

    def test_clamp_recorded_on_baselines(self):
        result = _prepared(HFEngine).rerank(make_batch(num_candidates=5), 9)
        assert (result.k, result.requested_k, result.k_clamped) == (5, 9, True)


class TestConfigValidation:
    def test_bad_policy(self):
        with pytest.raises(ValueError):
            SchedulerConfig(policy="lottery")

    def test_bad_quantum(self):
        with pytest.raises(ValueError):
            SchedulerConfig(quantum_layers=0)

    def test_bad_concurrency(self):
        with pytest.raises(ValueError):
            SchedulerConfig(max_concurrency=0)

    def test_bad_max_skew(self):
        with pytest.raises(ValueError):
            SchedulerConfig(policy="fusion", max_skew=-0.1)

    def test_past_arrival_rejected(self):
        engine = make_prism()
        scheduler = DeviceScheduler(engine)
        with pytest.raises(ValueError):
            scheduler.submit(make_batch(), 5, at=engine.device.clock.now - 1.0)

    def test_negative_priority_rejected(self):
        scheduler = DeviceScheduler(make_prism())
        with pytest.raises(ValueError):
            scheduler.submit(make_batch(), 5, priority=-1)

    def test_invalid_k_rejected_at_submit(self):
        """A bad k must fail at submit, before any request runs — not
        mid-drain after other requests already consumed device time."""
        scheduler = DeviceScheduler(make_prism())
        scheduler.submit(make_batch(), 5)
        with pytest.raises(ValueError):
            scheduler.submit(make_batch(), 0)

    def test_unprepared_engine_rejected(self):
        device = get_profile("nvidia_5070").create()
        engine = PrismEngine(
            shared_model(QWEN3_0_6B), device, PrismConfig(numerics=False)
        )
        with pytest.raises(RuntimeError):
            DeviceScheduler(engine)


def _mixed_workload(engine, policy, quantum_layers=1, max_concurrency=4):
    scheduler = DeviceScheduler(
        engine,
        SchedulerConfig(
            policy=policy, quantum_layers=quantum_layers, max_concurrency=max_concurrency
        ),
    )
    now = engine.device.clock.now
    scheduler.submit(make_batch(num_candidates=16, query_idx=0), 8, at=now)
    scheduler.submit(make_batch(num_candidates=12, query_idx=1), 5, at=now)
    scheduler.submit(
        make_batch(num_candidates=6, query_idx=2),
        3,
        at=now + 0.05,
        priority=LANE_INTERACTIVE,
    )
    return scheduler


class TestDeterminism:
    @pytest.mark.parametrize("policy", ("fifo", "round_robin", "priority", "fusion"))
    def test_byte_identical_schedules(self, policy):
        """Identical inputs must produce byte-identical schedule traces."""
        first = _mixed_workload(make_prism(), policy)
        second = _mixed_workload(make_prism(), policy)
        first.drain()
        second.drain()
        assert first.trace_text() == second.trace_text()
        assert first.trace_text()  # non-vacuous: the trace has steps

    def test_outcomes_deterministic(self):
        a = _mixed_workload(make_prism(), "priority")
        b = _mixed_workload(make_prism(), "priority")
        outcomes_a, outcomes_b = a.drain(), b.drain()
        assert [o.request_id for o in outcomes_a] == [o.request_id for o in outcomes_b]
        for oa, ob in zip(outcomes_a, outcomes_b):
            assert oa.finish == pytest.approx(ob.finish)
            assert np.array_equal(oa.result.top_indices, ob.result.top_indices)


class TestSoloEquivalence:
    """A preempted task's final selection must exactly equal its solo run —
    the §6 guarantee, across every engine family."""

    @pytest.mark.parametrize("name", sorted(ENGINE_FACTORIES))
    def test_preempted_equals_solo(self, name):
        factory = ENGINE_FACTORIES[name]
        batches = [make_batch(num_candidates=10, query_idx=i) for i in range(3)]
        solo = [factory().rerank(batch, 4) for batch in batches]

        engine = factory()
        scheduler = DeviceScheduler(
            engine, SchedulerConfig(policy="round_robin", quantum_layers=1)
        )
        for batch in batches:
            scheduler.submit(batch, 4)
        outcomes = {o.request_id: o for o in scheduler.drain()}
        interleaved = any(o.preempted for o in outcomes.values())
        assert interleaved, "round-robin over 3 tasks must interleave steps"
        for index, reference in enumerate(solo):
            result = outcomes[index].result
            assert np.array_equal(result.top_indices, reference.top_indices)
            assert np.array_equal(result.top_scores, reference.top_scores)


class TestPolicies:
    def test_fifo_runs_to_completion(self):
        scheduler = _mixed_workload(make_prism(), "fifo")
        scheduler.drain()
        # FIFO never interleaves: each task's steps are contiguous.
        order = [event.request_id for event in scheduler.trace]
        seen = []
        for request_id in order:
            if not seen or seen[-1] != request_id:
                seen.append(request_id)
        assert len(seen) == len(set(seen)), f"fifo interleaved: {seen}"

    def test_round_robin_interleaves(self):
        scheduler = _mixed_workload(make_prism(), "round_robin")
        outcomes = scheduler.drain()
        assert any(o.preempted for o in outcomes)

    def test_priority_preempts_batch_for_interactive(self):
        fifo = _mixed_workload(make_prism(), "fifo")
        prio = _mixed_workload(make_prism(), "priority")
        fifo_out = {o.request_id: o for o in fifo.drain()}
        prio_out = {o.request_id: o for o in prio.drain()}
        # Request 2 is the late-arriving interactive one.
        assert prio_out[2].e2e_latency < fifo_out[2].e2e_latency
        # The interactive request finishes before at least one batch task.
        assert prio_out[2].finish < max(prio_out[0].finish, prio_out[1].finish)

    def test_max_concurrency_one_serialises(self):
        scheduler = _mixed_workload(make_prism(), "round_robin", max_concurrency=1)
        outcomes = scheduler.drain()
        assert not any(o.preempted for o in outcomes)

    def test_priority_preempts_through_saturated_cap(self):
        """The preemption guarantee must hold when batch work saturates
        max_concurrency: the interactive arrival is admitted over the
        cap and the running batch task yields at its next layer
        boundary instead of finishing its whole pass first."""
        fifo = _mixed_workload(make_prism(), "fifo", max_concurrency=2)
        prio = _mixed_workload(make_prism(), "priority", max_concurrency=2)
        fifo_out = {o.request_id: o for o in fifo.drain()}
        prio_out = {o.request_id: o for o in prio.drain()}
        interactive = prio_out[2]
        # Served promptly: far sooner than behind a full batch pass.
        assert interactive.e2e_latency < 0.5 * fifo_out[2].e2e_latency
        assert interactive.finish < max(prio_out[0].finish, prio_out[1].finish)
        # And a batch task was genuinely preempted mid-pass.
        assert any(prio_out[i].preempted for i in (0, 1))

    def test_fusion_gang_steps_in_lockstep(self):
        """Fusion steps the whole gang across each layer boundary
        back-to-back: the trace shows fused groups the size of the gang."""
        engine = make_prism()
        scheduler = DeviceScheduler(
            engine, SchedulerConfig(policy="fusion", max_concurrency=3)
        )
        for idx in range(3):
            scheduler.submit(make_batch(num_candidates=10, query_idx=idx), 4)
        scheduler.drain()
        sizes = scheduler.fused_group_sizes()
        assert max(sizes) == 3
        # Most boundaries are crossed by the full gang (tasks only drop
        # out near the end as pruning terminates them at different layers).
        assert scheduler.mean_fused_occupancy > 2.0

    def test_fifo_occupancy_is_one(self):
        scheduler = _mixed_workload(make_prism(), "fifo")
        scheduler.drain()
        assert scheduler.mean_fused_occupancy == 1.0

    def test_fusion_max_skew_holds_arrival_for_fresh_group(self):
        """With a generous max_skew, a mid-sweep arrival waits for the
        running group to drain; with zero skew it is admitted at once."""

        def run(max_skew):
            engine = make_prism()
            scheduler = DeviceScheduler(
                engine,
                SchedulerConfig(
                    policy="fusion", max_concurrency=4, max_skew=max_skew
                ),
            )
            now = engine.device.clock.now
            for idx in range(2):
                scheduler.submit(make_batch(num_candidates=12, query_idx=idx), 5, at=now)
            late = scheduler.submit(
                make_batch(num_candidates=6, query_idx=2), 3, at=now + 0.02
            )
            outcomes = {o.request_id: o for o in scheduler.drain()}
            return outcomes, late

        held, late = run(max_skew=60.0)
        group_finish = max(held[i].finish for i in (0, 1))
        assert held[late].start >= group_finish  # waited for a fresh group

        eager, late = run(max_skew=0.0)
        group_finish = max(eager[i].finish for i in (0, 1))
        assert eager[late].start < group_finish  # admitted mid-sweep
        # Either way the late request's selection is identical.
        assert np.array_equal(
            held[late].result.top_indices, eager[late].result.top_indices
        )

    def test_latency_decomposition(self):
        scheduler = _mixed_workload(make_prism(), "priority")
        for outcome in scheduler.drain():
            assert outcome.queue_wait >= 0
            assert outcome.service_seconds > 0
            assert outcome.preemption_seconds >= -1e-12
            assert outcome.e2e_latency == pytest.approx(
                outcome.queue_wait + outcome.service_seconds + outcome.preemption_seconds
            )

    def test_stats_lanes(self):
        scheduler = _mixed_workload(make_prism(), "priority")
        scheduler.drain()
        stats = scheduler.stats()
        assert len(stats.lane(LANE_INTERACTIVE)) == 1
        assert len(stats.lane(LANE_BATCH)) == 2
        assert stats.throughput_rps > 0
        assert stats.latency_percentile(99) >= stats.latency_percentile(50)


class TestServiceConcurrentMode:
    def test_max_concurrency_validated(self):
        with pytest.raises(ValueError):
            SemanticSelectionService(
                shared_model(QWEN3_0_6B),
                get_profile("nvidia_5070"),
                config=PrismConfig(numerics=False),
                max_concurrency=0,
            )

    def _service(self, **kwargs):
        defaults = dict(
            model=shared_model(QWEN3_0_6B),
            profile=get_profile("nvidia_5070"),
            config=PrismConfig(numerics=False),
            sample_rate=0.5,
            max_concurrency=3,
        )
        defaults.update(kwargs)
        return SemanticSelectionService(**defaults)

    def test_concurrent_selections_match_serial(self):
        batches = [make_batch(num_candidates=10, query_idx=i) for i in range(4)]
        serial = self._service()
        serial_results = [serial.select(batch, 4) for batch in batches]
        concurrent = self._service()
        outcomes = concurrent.select_concurrent(
            [(batch, 4) for batch in batches], policy="round_robin"
        )
        by_id = {o.request_id: o for o in outcomes}
        for index, reference in enumerate(serial_results):
            assert np.array_equal(
                by_id[index].result.top_indices, reference.top_indices
            )

    def test_sampling_stride_preserved(self):
        """sample_rate=0.5 over 4 requests logs exactly 2 — same as serial,
        and independent of completion order."""
        batches = [make_batch(num_candidates=10, query_idx=i) for i in range(4)]
        service = self._service(sample_rate=0.5)
        service.select_concurrent([(batch, 4) for batch in batches], policy="priority")
        assert service.stats.requests_served == 4
        assert service.stats.requests_sampled == 2
        assert service.pending_samples == 2

    def test_sample_overrides_respected(self):
        batches = [make_batch(num_candidates=10, query_idx=i) for i in range(3)]
        service = self._service()
        service.select_concurrent(
            [(batch, 4) for batch in batches], samples=[True, False, True]
        )
        assert service.stats.requests_sampled == 2

    def test_mismatched_kwarg_lengths_rejected(self):
        service = self._service()
        with pytest.raises(ValueError):
            service.select_concurrent([(make_batch(), 4)], arrivals=[0.0, 1.0])

    def test_rejected_wave_leaves_sampling_stride_untouched(self):
        """A wave that fails validation must not consume stride state:
        the next successful wave samples exactly as a fresh service."""
        batches = [make_batch(num_candidates=10, query_idx=i) for i in range(4)]
        service = self._service(sample_rate=0.5)
        with pytest.raises(ValueError):
            service.select_concurrent(
                [(batches[0], 4), (batches[1], 0)]  # second request invalid
            )
        assert service.stats.requests_served == 0
        assert service.last_scheduler is None
        service.select_concurrent([(batch, 4) for batch in batches])
        assert service.stats.requests_sampled == 2  # same as an untouched stride

    def test_idle_maintenance_after_concurrent_wave(self):
        service = self._service(sample_rate=1.0)
        batches = [make_batch(num_candidates=10, query_idx=i) for i in range(2)]
        service.select_concurrent([(batch, 4) for batch in batches])
        report = service.idle_maintenance()
        assert report is not None
        assert report.samples_checked == 2
