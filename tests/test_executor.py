"""Unit tests for the two-stream device executor."""

import pytest

from repro.device.executor import DeviceExecutor
from repro.device.platforms import NVIDIA_5070


@pytest.fixture
def executor():
    return DeviceExecutor(NVIDIA_5070.create())


class TestComputeStream:
    def test_compute_advances_clock(self, executor):
        duration = executor.compute(1e12)
        assert executor.now == pytest.approx(duration)

    def test_compute_returns_duration(self, executor):
        assert executor.compute(1e12) > 0.0


class TestIOOverlap:
    def test_prefetch_does_not_advance_clock(self, executor):
        executor.prefetch("layer", 100_000_000)
        assert executor.now == 0.0
        assert executor.io_stall_seconds == 0.0

    def test_wait_io_counts_stall_when_arriving_early(self, executor):
        executor.prefetch("layer", 100_000_000)
        executor.wait_io("layer")
        assert executor.io_stall_seconds > 0.0
        assert executor.now == pytest.approx(executor.io_stall_seconds)

    def test_no_stall_when_compute_covers_the_load(self, executor):
        executor.prefetch("layer", 1_000_000)  # ~0.3ms on the 5070 SSD
        executor.compute(1e12)  # ~80ms of compute
        executor.wait_io("layer")
        assert executor.io_stall_seconds == 0.0

    def test_partial_overlap_counts_only_the_residual(self, executor):
        nbytes = 100_000_000  # ~28.6ms on a 3.5 GB/s SSD
        executor.prefetch("layer", nbytes)
        executor.compute(1.23e11)  # ~10ms of compute
        before = executor.now
        executor.wait_io("layer")
        load_time = executor.device.ssd.model.read_time(nbytes)
        assert executor.io_stall_seconds == pytest.approx(load_time - before)

    def test_read_blocking_is_all_stall(self, executor):
        executor.read_blocking("blob", 35_000_000)
        assert executor.io_stall_seconds == pytest.approx(executor.now)

    def test_write_blocking_is_all_stall(self, executor):
        executor.write_blocking("blob", 28_000_000)
        assert executor.io_stall_seconds == pytest.approx(executor.now)

    def test_wait_io_if_pending_tolerates_missing_tag(self, executor):
        executor.wait_io_if_pending("never-issued")  # no exception
        assert executor.io_stall_seconds == 0.0

    def test_offload_async_does_not_advance_clock(self, executor):
        executor.offload_async("hidden", 50_000_000)
        assert executor.now == 0.0


class TestSpans:
    def test_span_measures_simulated_time(self, executor):
        with executor.span("stage"):
            executor.compute(1e12)
        assert executor.span_total("stage") == pytest.approx(executor.now)

    def test_spans_accumulate_by_name(self, executor):
        with executor.span("stage"):
            executor.compute(1e11)
        with executor.span("stage"):
            executor.compute(1e11)
        with executor.span("other"):
            executor.compute(1e11)
        assert executor.span_total("stage") == pytest.approx(2 * executor.span_total("other"))

    def test_span_records_even_on_exception(self, executor):
        with pytest.raises(RuntimeError):
            with executor.span("failing"):
                executor.compute(1e11)
                raise RuntimeError("boom")
        assert executor.span_total("failing") > 0.0

    def test_unknown_span_total_is_zero(self, executor):
        assert executor.span_total("nothing") == 0.0
