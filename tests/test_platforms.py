"""Unit tests for device profiles and the platform registry."""

import pytest

from repro.device.memory import GiB
from repro.device.platforms import (
    APPLE_M2,
    EDGE_PLATFORMS,
    NVIDIA_5070,
    NVIDIA_A800,
    DeviceProfile,
    get_profile,
    list_profiles,
    register_profile,
)


class TestRegistry:
    def test_paper_platforms_registered(self):
        assert get_profile("nvidia_5070") is NVIDIA_5070
        assert get_profile("apple_m2") is APPLE_M2
        assert get_profile("nvidia_a800") is NVIDIA_A800

    def test_unknown_profile_raises_with_known_list(self):
        with pytest.raises(KeyError, match="apple_m2"):
            get_profile("tpu_v5")

    def test_list_profiles_sorted(self):
        profiles = list_profiles()
        assert profiles == sorted(profiles)
        assert "nvidia_5070" in profiles

    def test_register_custom_profile(self):
        custom = DeviceProfile(
            name="test_custom_platform",
            compute=NVIDIA_5070.compute,
            ssd=NVIDIA_5070.ssd,
            memory_budget_bytes=2 * GiB,
        )
        register_profile(custom)
        assert get_profile("test_custom_platform") is custom

    def test_edge_platforms_are_the_papers_two(self):
        assert set(EDGE_PLATFORMS) == {"nvidia_5070", "apple_m2"}


class TestPaperCalibration:
    def test_edge_budgets_below_8gib(self):
        # Both edge platforms expose a bit over 7 GiB to the reranker
        # process (driver/display reservations), which is what makes
        # Qwen3-4B/8B OOM under vanilla HF per Table 3.
        assert 7 * GiB < NVIDIA_5070.memory_budget_bytes < 8 * GiB
        assert APPLE_M2.memory_budget_bytes == NVIDIA_5070.memory_budget_bytes

    def test_a800_has_headroom(self):
        assert NVIDIA_A800.memory_budget_bytes > NVIDIA_5070.memory_budget_bytes

    def test_nvidia_faster_than_apple(self):
        assert NVIDIA_5070.compute.flops_per_second > APPLE_M2.compute.flops_per_second

    def test_pcie4_ssd_bandwidth_scale(self):
        # §3.2's overlap window requires multi-GB/s sustained reads.
        assert NVIDIA_5070.ssd.read_bandwidth >= 3e9
        assert APPLE_M2.ssd.read_bandwidth >= 3e9


class TestDevice:
    def test_create_returns_fresh_instances(self):
        d1 = NVIDIA_5070.create()
        d2 = NVIDIA_5070.create()
        assert d1.clock is not d2.clock
        d1.clock.advance(1.0)
        assert d2.clock.now == 0.0

    def test_components_share_the_clock(self):
        device = APPLE_M2.create()
        assert device.memory.clock is device.clock
        assert device.ssd.clock is device.clock

    def test_run_op_advances_clock(self):
        device = NVIDIA_5070.create()
        duration = device.run_op(1e12)
        assert device.clock.now == pytest.approx(duration)
        assert duration > 0

    def test_memory_budget_wired_through(self):
        device = NVIDIA_5070.create()
        assert device.memory.budget_bytes == NVIDIA_5070.memory_budget_bytes
