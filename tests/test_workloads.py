"""Unit tests for workload representation and batch packing."""

import numpy as np
import pytest

from repro.data.workloads import build_batch, make_query
from repro.model.zoo import QWEN3_0_6B
from repro.text.tokenizer import Tokenizer
from repro.text.vocab import Vocabulary


@pytest.fixture
def query():
    rng = np.random.default_rng(0)
    labels = np.array([True, False, True, False])
    relevance = np.array([0.9, 0.2, 0.8, 0.3])
    return make_query(
        rng, query_id=7, labels=labels, relevance=relevance, query_length=12, doc_length_mean=100
    )


class TestMakeQuery:
    def test_candidate_count(self, query):
        assert query.num_candidates == 4
        assert query.num_relevant == 2

    def test_fields_preserved(self, query):
        assert np.array_equal(query.labels(), [True, False, True, False])
        assert np.allclose(query.relevance(), [0.9, 0.2, 0.8, 0.3])

    def test_uids_unique(self, query):
        assert len(set(query.uids().tolist())) == 4

    def test_lengths_positive_and_bounded(self, query):
        for candidate in query.candidates:
            assert 32 <= candidate.length <= 400

    def test_misaligned_inputs_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            make_query(
                rng,
                query_id=0,
                labels=np.array([True]),
                relevance=np.array([0.5, 0.6]),
                query_length=8,
                doc_length_mean=50,
            )


class TestBuildBatch:
    def test_batch_shape(self, query):
        tokenizer = Tokenizer(Vocabulary(QWEN3_0_6B.vocab_size))
        batch = build_batch(query, tokenizer, QWEN3_0_6B.max_seq_len)
        assert batch.tokens.shape == (4, QWEN3_0_6B.max_seq_len)
        assert batch.size == 4

    def test_relevance_and_uids_carried_through(self, query):
        tokenizer = Tokenizer(Vocabulary(QWEN3_0_6B.vocab_size))
        batch = build_batch(query, tokenizer, QWEN3_0_6B.max_seq_len)
        assert np.allclose(batch.relevance, query.relevance())
        assert np.array_equal(batch.uids, query.uids())

    def test_lengths_reflect_documents(self, query):
        tokenizer = Tokenizer(Vocabulary(QWEN3_0_6B.vocab_size))
        batch = build_batch(query, tokenizer, QWEN3_0_6B.max_seq_len)
        template = tokenizer.template_ids().size
        expected = [min(3 + template + 12 + c.length, 512) for c in query.candidates]
        assert batch.lengths.tolist() == expected

    def test_same_query_same_batch(self, query):
        tokenizer = Tokenizer(Vocabulary(QWEN3_0_6B.vocab_size))
        a = build_batch(query, tokenizer, 512)
        b = build_batch(query, tokenizer, 512)
        assert np.array_equal(a.tokens, b.tokens)


class TestZipfRequestStream:
    @pytest.fixture
    def base_queries(self):
        rng = np.random.default_rng(42)
        queries = []
        for qid in range(8):
            relevance = rng.uniform(0.05, 0.95, size=6)
            queries.append(
                make_query(
                    rng,
                    query_id=qid,
                    labels=relevance >= 0.5,
                    relevance=relevance,
                    query_length=8,
                    doc_length_mean=40,
                )
            )
        return queries

    def _stream(self, base_queries, seed=0, **kwargs):
        from repro.data.workloads import zipf_request_stream

        return zipf_request_stream(
            np.random.default_rng(seed), base_queries, 64, **kwargs
        )

    def test_untagged_stream_deterministic_and_untenanted(self, base_queries):
        a = self._stream(base_queries, partial_overlap_rate=0.4)
        b = self._stream(base_queries, partial_overlap_rate=0.4)
        assert a == b
        assert all(query.tenant is None for query in a)

    def test_tagged_stream_deterministic(self, base_queries):
        tenant_of = lambda i: f"t{i % 3}"  # noqa: E731
        a = self._stream(base_queries, partial_overlap_rate=0.4, tenant_of=tenant_of)
        b = self._stream(base_queries, partial_overlap_rate=0.4, tenant_of=tenant_of)
        assert a == b
        assert all(query.tenant == f"t{i % 3}" for i, query in enumerate(a))

    def test_tenant_substreams_independent(self, base_queries):
        # Swapping one tenant's identity (b -> c) must not perturb the
        # other tenant's variants: each tenant mutates from its own
        # sha256-derived substream, not from the shared draw RNG.
        ab = self._stream(
            base_queries,
            partial_overlap_rate=0.6,
            tenant_of=lambda i: "a" if i % 2 == 0 else "b",
        )
        ac = self._stream(
            base_queries,
            partial_overlap_rate=0.6,
            tenant_of=lambda i: "a" if i % 2 == 0 else "c",
        )
        a_variants = [q for q in ab if q.tenant == "a"]
        assert a_variants == [q for q in ac if q.tenant == "a"]
        b_variants = [q for q in ab if q.tenant == "b"]
        c_variants = [q for q in ac if q.tenant == "c"]
        assert [q.query_id for q in b_variants] == [q.query_id for q in c_variants]

    def test_mutation_cache_keyed_per_tenant(self, base_queries):
        # Two tenants mutating the same hot base query must get
        # *different* variants (cache key is (base index, tenant)), and
        # a repeat within one tenant must reuse its cached variant.
        stream = self._stream(
            base_queries,
            partial_overlap_rate=1.0,
            tenant_of=lambda i: "a" if i % 2 == 0 else "b",
        )
        by_tenant = {}
        for query in stream:
            by_tenant.setdefault((query.tenant, query.query_id), []).append(query)
        for (tenant, qid), variants in by_tenant.items():
            assert all(v == variants[0] for v in variants)  # cached repeat
            other = "b" if tenant == "a" else "a"
            twin = by_tenant.get((other, qid))
            if twin is not None:
                assert twin[0].candidates != variants[0].candidates
