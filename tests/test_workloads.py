"""Unit tests for workload representation and batch packing."""

import numpy as np
import pytest

from repro.data.workloads import build_batch, make_query
from repro.model.zoo import QWEN3_0_6B
from repro.text.tokenizer import Tokenizer
from repro.text.vocab import Vocabulary


@pytest.fixture
def query():
    rng = np.random.default_rng(0)
    labels = np.array([True, False, True, False])
    relevance = np.array([0.9, 0.2, 0.8, 0.3])
    return make_query(
        rng, query_id=7, labels=labels, relevance=relevance, query_length=12, doc_length_mean=100
    )


class TestMakeQuery:
    def test_candidate_count(self, query):
        assert query.num_candidates == 4
        assert query.num_relevant == 2

    def test_fields_preserved(self, query):
        assert np.array_equal(query.labels(), [True, False, True, False])
        assert np.allclose(query.relevance(), [0.9, 0.2, 0.8, 0.3])

    def test_uids_unique(self, query):
        assert len(set(query.uids().tolist())) == 4

    def test_lengths_positive_and_bounded(self, query):
        for candidate in query.candidates:
            assert 32 <= candidate.length <= 400

    def test_misaligned_inputs_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            make_query(
                rng,
                query_id=0,
                labels=np.array([True]),
                relevance=np.array([0.5, 0.6]),
                query_length=8,
                doc_length_mean=50,
            )


class TestBuildBatch:
    def test_batch_shape(self, query):
        tokenizer = Tokenizer(Vocabulary(QWEN3_0_6B.vocab_size))
        batch = build_batch(query, tokenizer, QWEN3_0_6B.max_seq_len)
        assert batch.tokens.shape == (4, QWEN3_0_6B.max_seq_len)
        assert batch.size == 4

    def test_relevance_and_uids_carried_through(self, query):
        tokenizer = Tokenizer(Vocabulary(QWEN3_0_6B.vocab_size))
        batch = build_batch(query, tokenizer, QWEN3_0_6B.max_seq_len)
        assert np.allclose(batch.relevance, query.relevance())
        assert np.array_equal(batch.uids, query.uids())

    def test_lengths_reflect_documents(self, query):
        tokenizer = Tokenizer(Vocabulary(QWEN3_0_6B.vocab_size))
        batch = build_batch(query, tokenizer, QWEN3_0_6B.max_seq_len)
        template = tokenizer.template_ids().size
        expected = [min(3 + template + 12 + c.length, 512) for c in query.candidates]
        assert batch.lengths.tolist() == expected

    def test_same_query_same_batch(self, query):
        tokenizer = Tokenizer(Vocabulary(QWEN3_0_6B.vocab_size))
        a = build_batch(query, tokenizer, 512)
        b = build_batch(query, tokenizer, 512)
        assert np.array_equal(a.tokens, b.tokens)
