"""Legacy-shim coverage: every deprecated entry point warns and forwards.

DESIGN.md §8 keeps ``rerank``, ``select``, ``select_concurrent`` and
the two ``submit``\\ s alive as thin shims over the request-centric
API.  Each must (a) emit ``DeprecationWarning`` so callers migrate,
and (b) forward its arguments faithfully — the shim path must produce
the same selections as the non-deprecated path it wraps.
"""

import numpy as np
import pytest

from repro.core.config import PrismConfig
from repro.core.engine import PrismEngine
from repro.core.fleet import FleetService
from repro.core.scheduler import LANE_INTERACTIVE, DeviceScheduler
from repro.core.service import SemanticSelectionService
from repro.data.datasets import get_dataset
from repro.data.workloads import build_batch
from repro.device.platforms import get_profile
from repro.harness.runner import shared_model, shared_tokenizer
from repro.model.zoo import QWEN3_0_6B


@pytest.fixture(scope="module")
def batches():
    tokenizer = shared_tokenizer(QWEN3_0_6B)
    queries = get_dataset("wikipedia").queries(4, 10)
    return [build_batch(q, tokenizer, QWEN3_0_6B.max_seq_len) for q in queries]


def make_engine():
    engine = PrismEngine(
        shared_model(QWEN3_0_6B),
        get_profile("nvidia_5070").create(),
        PrismConfig(numerics=False),
    )
    engine.prepare()
    return engine


def make_service(max_concurrency=1):
    return SemanticSelectionService(
        shared_model(QWEN3_0_6B),
        get_profile("nvidia_5070"),
        config=PrismConfig(numerics=False),
        max_concurrency=max_concurrency,
    )


class TestRerankShim:
    def test_warns_and_forwards(self, batches):
        engine = make_engine()
        with pytest.warns(DeprecationWarning, match="rerank.*deprecated"):
            legacy = engine.rerank(batches[0], 5)
        # The non-deprecated step path on a fresh engine produces the
        # identical selection — the shim forwarded (batch, k) faithfully.
        reference = make_engine().start(batches[0], 5).run()
        assert np.array_equal(legacy.top_indices, reference.top_indices)
        assert np.array_equal(legacy.top_scores, reference.top_scores)
        assert legacy.requested_k == 5


class TestSelectShim:
    def test_warns_and_forwards(self, batches):
        service = make_service()
        with pytest.warns(DeprecationWarning, match="select.*deprecated"):
            legacy = service.select(batches[0], 5, sample=True)
        reference = make_engine().start(batches[0], 5).run()
        assert np.array_equal(legacy.top_indices, reference.top_indices)
        # The sampling override was forwarded: the request was logged.
        assert service.pending_samples == 1

    def test_invalid_k_still_rejected(self, batches):
        service = make_service()
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError):
                service.select(batches[0], 0)


class TestSelectConcurrentShim:
    def test_warns_and_forwards(self, batches):
        service = make_service(max_concurrency=2)
        with pytest.warns(DeprecationWarning, match="select_concurrent.*deprecated"):
            outcomes = service.select_concurrent(
                [(batch, 5) for batch in batches[:3]],
                arrivals=[0.0, 0.0, 0.1],
                priorities=[1, LANE_INTERACTIVE, 1],
                policy="priority",
            )
        assert len(outcomes) == 3
        by_id = {o.request_id: o for o in outcomes}
        # Priorities and arrivals forwarded per request.
        assert by_id[1].priority == LANE_INTERACTIVE
        assert by_id[2].arrival == pytest.approx(0.1)
        # Selections identical to solo execution.
        for index, batch in enumerate(batches[:3]):
            reference = make_engine().start(batch, 5).run()
            assert np.array_equal(by_id[index].result.top_indices, reference.top_indices)

    def test_mismatched_sequences_rejected(self, batches):
        service = make_service(max_concurrency=2)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError):
                service.select_concurrent([(batches[0], 5)], arrivals=[0.0, 1.0])


class TestSchedulerSubmitShim:
    def test_warns_and_forwards(self, batches):
        engine = make_engine()
        scheduler = DeviceScheduler(engine)
        with pytest.warns(DeprecationWarning, match="submit.*deprecated"):
            request_id = scheduler.submit(
                batches[0], 5, at=0.05, priority=LANE_INTERACTIVE
            )
        (outcome,) = scheduler.drain()
        assert outcome.request_id == request_id
        assert outcome.priority == LANE_INTERACTIVE
        assert outcome.arrival == pytest.approx(0.05)
        reference = make_engine().start(batches[0], 5).run()
        assert np.array_equal(outcome.result.top_indices, reference.top_indices)


class TestFleetSubmitShim:
    def test_warns_and_forwards(self, batches):
        fleet = FleetService.homogeneous(
            shared_model(QWEN3_0_6B),
            get_profile("nvidia_5070"),
            1,
            config=PrismConfig(numerics=False),
        )
        with pytest.warns(DeprecationWarning, match="submit.*deprecated"):
            request_id = fleet.submit(batches[0], 5, at=0.02)
        (outcome,) = fleet.drain()
        assert outcome.request_id == request_id
        assert outcome.arrival == pytest.approx(0.02)
        reference = make_engine().start(batches[0], 5).run()
        assert np.array_equal(outcome.result.top_indices, reference.top_indices)
