"""Unit tests for chunked execution (§4.3)."""

import numpy as np
import pytest

from repro.core.chunking import (
    HiddenStateRing,
    choose_chunk_size,
    iter_chunks,
    plan_hidden_states,
)
from repro.device.executor import DeviceExecutor
from repro.device.memory import MiB
from repro.device.platforms import APPLE_M2, NVIDIA_5070
from repro.model import costs
from repro.model.zoo import QWEN3_0_6B


class TestChooseChunkSize:
    def test_within_bounds(self):
        chunk = choose_chunk_size(QWEN3_0_6B, NVIDIA_5070, 512, 20, 160 * MiB, 2e-3)
        assert 1 <= chunk <= 20

    def test_respects_memory_ceiling(self):
        budget = 160 * MiB
        chunk = choose_chunk_size(QWEN3_0_6B, NVIDIA_5070, 512, 60, budget, 2e-3)
        per_cand = costs.intermediate_bytes_per_candidate(QWEN3_0_6B, 512)
        assert chunk * per_cand <= budget

    def test_respects_compute_floor(self):
        """The chunk must be big enough to cover the minimum window."""
        window = 5e-3
        chunk = choose_chunk_size(QWEN3_0_6B, NVIDIA_5070, 512, 60, 10_000 * MiB, window)
        per_cand_seconds = (
            costs.layer_flops_per_candidate(QWEN3_0_6B, 512)
            / NVIDIA_5070.compute.flops_per_second
        )
        assert chunk * per_cand_seconds >= window or chunk == 60

    def test_slower_device_needs_smaller_chunks(self):
        """The M2 reaches the same compute window with fewer candidates."""
        fast = choose_chunk_size(QWEN3_0_6B, NVIDIA_5070, 512, 60, 10_000 * MiB, 2e-3)
        slow = choose_chunk_size(QWEN3_0_6B, APPLE_M2, 512, 60, 10_000 * MiB, 2e-3)
        assert slow <= fast

    def test_capped_by_candidates(self):
        chunk = choose_chunk_size(QWEN3_0_6B, NVIDIA_5070, 512, 3, 10_000 * MiB, 1.0)
        assert chunk == 3

    def test_invalid_candidates_rejected(self):
        with pytest.raises(ValueError):
            choose_chunk_size(QWEN3_0_6B, NVIDIA_5070, 512, 0, 160 * MiB, 2e-3)


class TestIterChunks:
    def test_partitions_exactly(self):
        chunks = list(iter_chunks(10, 3))
        flat = np.concatenate(chunks)
        assert flat.tolist() == list(range(10))
        assert [c.size for c in chunks] == [3, 3, 3, 1]

    def test_single_chunk(self):
        chunks = list(iter_chunks(5, 10))
        assert len(chunks) == 1
        assert chunks[0].size == 5

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            list(iter_chunks(10, 0))


class TestHiddenPlan:
    def test_mode_off(self):
        plan = plan_hidden_states(QWEN3_0_6B, 512, 60, 4, "off", 1 * MiB)
        assert not plan.offload

    def test_mode_on(self):
        plan = plan_hidden_states(QWEN3_0_6B, 512, 4, 2, "on", 10_000 * MiB)
        assert plan.offload

    def test_mode_auto_thresholds_on_budget(self):
        small_budget = 1 * MiB
        big_budget = 10_000 * MiB
        assert plan_hidden_states(QWEN3_0_6B, 512, 60, 4, "auto", small_budget).offload
        assert not plan_hidden_states(QWEN3_0_6B, 512, 60, 4, "auto", big_budget).offload

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            plan_hidden_states(QWEN3_0_6B, 512, 60, 4, "maybe", 1 * MiB)

    def test_resident_bytes_without_offload(self):
        plan = plan_hidden_states(QWEN3_0_6B, 512, 60, 4, "off", 1 * MiB)
        assert plan.resident_bytes(60) == 60 * plan.per_candidate_bytes

    def test_resident_bytes_with_offload_bounded_by_ring(self):
        plan = plan_hidden_states(QWEN3_0_6B, 512, 60, 4, "on", 1 * MiB)
        assert plan.resident_bytes(60) == 3 * 4 * plan.per_candidate_bytes

    def test_resident_bytes_fewer_chunks_than_ring(self):
        plan = plan_hidden_states(QWEN3_0_6B, 512, 4, 4, "on", 1 * MiB)
        # One chunk total → only one slab resident.
        assert plan.resident_bytes(4) == 4 * plan.per_candidate_bytes


class TestHiddenStateRing:
    def _ring(self, num_candidates=12, chunk=4):
        executor = DeviceExecutor(NVIDIA_5070.create())
        plan = plan_hidden_states(QWEN3_0_6B, 512, num_candidates, chunk, "on", 1 * MiB)
        return HiddenStateRing(executor, plan, num_candidates), executor

    def test_requires_offload_plan(self):
        executor = DeviceExecutor(NVIDIA_5070.create())
        plan = plan_hidden_states(QWEN3_0_6B, 512, 4, 4, "off", 10_000 * MiB)
        with pytest.raises(ValueError):
            HiddenStateRing(executor, plan, 4)

    def test_allocates_at_most_three_slabs(self):
        ring, executor = self._ring(num_candidates=20, chunk=4)
        ring.allocate()
        memory = executor.device.memory
        slabs = sum(1 for i in range(5) if memory.is_live(f"hidden-ring/slot{i}"))
        assert slabs == 3
        ring.release_all()
        assert memory.in_use == 0

    def test_fewer_chunks_fewer_slabs(self):
        ring, executor = self._ring(num_candidates=4, chunk=4)
        ring.allocate()
        assert executor.device.memory.is_live("hidden-ring/slot0")
        assert not executor.device.memory.is_live("hidden-ring/slot1")
        ring.release_all()

    def test_allocate_idempotent(self):
        ring, executor = self._ring()
        ring.allocate()
        ring.allocate()
        ring.release_all()
        assert executor.device.memory.in_use == 0

    def test_layer_sweep_prefetches_and_offloads(self):
        ring, executor = self._ring(num_candidates=12, chunk=4)
        ring.allocate()
        ring.begin_layer(1)
        for chunk_no in range(3):
            ring.acquire(1, chunk_no)
            executor.compute(1e10)
            ring.release(1, chunk_no)
        ssd = executor.device.ssd
        reads = [r for r in ssd.request_log if r.kind == "read"]
        writes = [r for r in ssd.request_log if r.kind == "write"]
        assert len(reads) == 3  # chunks 0..2 prefetched
        assert len(writes) == 3  # every chunk written back
        ring.release_all()

    def test_layer_zero_chunk_zero_not_prefetched(self):
        """Chunk 0 of layer 0 comes straight from the embedding."""
        ring, executor = self._ring(num_candidates=12, chunk=4)
        ring.allocate()
        ring.begin_layer(0)
        tags = [r.tag for r in executor.device.ssd.request_log]
        assert "hidden-ring/read/L0/C0" not in tags
        assert "hidden-ring/read/L0/C1" in tags
        ring.release_all()
