"""Unit tests for the LRU embedding-row cache (§4.4)."""

import numpy as np
import pytest

from repro.core.embedding_cache import EmbeddingCache
from repro.device.executor import DeviceExecutor
from repro.device.platforms import NVIDIA_5070


@pytest.fixture
def executor():
    return DeviceExecutor(NVIDIA_5070.create())


def make_cache(executor, capacity=4, row_nbytes=2048):
    cache = EmbeddingCache(capacity_rows=capacity, row_nbytes=row_nbytes, executor=executor)
    cache.allocate()
    return cache


class TestLifecycle:
    def test_allocate_charges_fixed_slab(self, executor):
        cache = make_cache(executor, capacity=10, row_nbytes=1000)
        assert executor.device.memory.live_bytes("embedding-cache") == 10_000

    def test_allocate_idempotent(self, executor):
        cache = make_cache(executor)
        cache.allocate()
        assert executor.device.memory.in_use == cache.capacity_rows * cache.row_nbytes

    def test_release_frees_and_clears(self, executor):
        cache = make_cache(executor)
        cache.lookup(np.array([1, 2]))
        cache.release()
        assert executor.device.memory.in_use == 0
        assert cache.resident_rows == 0

    def test_lookup_before_allocate_rejected(self, executor):
        cache = EmbeddingCache(capacity_rows=4, row_nbytes=100, executor=executor)
        with pytest.raises(RuntimeError):
            cache.lookup(np.array([1]))

    def test_invalid_construction_rejected(self, executor):
        with pytest.raises(ValueError):
            EmbeddingCache(capacity_rows=0, row_nbytes=100, executor=executor)
        with pytest.raises(ValueError):
            EmbeddingCache(capacity_rows=4, row_nbytes=0, executor=executor)


class TestLookups:
    def test_cold_lookup_all_misses(self, executor):
        cache = make_cache(executor)
        result = cache.lookup(np.array([1, 2, 3]))
        assert result.misses == 3 and result.hits == 0
        assert result.miss_bytes == 3 * cache.row_nbytes

    def test_warm_lookup_all_hits(self, executor):
        cache = make_cache(executor)
        cache.lookup(np.array([1, 2, 3]))
        result = cache.lookup(np.array([1, 2, 3]))
        assert result.hits == 3 and result.misses == 0
        assert result.io_seconds == 0.0

    def test_duplicate_tokens_counted_once(self, executor):
        cache = make_cache(executor)
        result = cache.lookup(np.array([5, 5, 5, 6]))
        assert result.unique_tokens == 2

    def test_misses_trigger_synchronous_io(self, executor):
        cache = make_cache(executor)
        before = executor.now
        result = cache.lookup(np.array([1, 2]))
        assert executor.now > before
        assert result.io_seconds == pytest.approx(executor.now - before)
        assert executor.io_stall_seconds > 0

    def test_hit_rate_property(self, executor):
        cache = make_cache(executor)
        cache.lookup(np.array([1, 2]))  # 2 misses
        cache.lookup(np.array([1, 2]))  # 2 hits
        assert cache.hit_rate == pytest.approx(0.5)

    def test_empty_lookup(self, executor):
        cache = make_cache(executor)
        result = cache.lookup(np.array([], dtype=np.int64))
        assert result.unique_tokens == 0
        # Resolving nothing is "no samples", not a perfect hit rate.
        assert result.hit_rate is None

    def test_never_used_cache_reports_no_hit_rate(self, executor):
        """A cache nobody consulted must report None (rendered "-"),
        never a fake 100%."""
        cache = make_cache(executor)
        assert cache.hit_rate is None
        cache.lookup(np.array([1]))
        assert cache.hit_rate == 0.0

    def test_vectorised_lookup_matches_reference_loop(self, executor):
        """The set-based membership pass is a pure speedup: hit/miss
        accounting and the LRU order (hence every future eviction) are
        bitwise what the per-token probe loop produced."""
        from collections import OrderedDict

        reference: OrderedDict[int, None] = OrderedDict()

        def reference_lookup(cache, tokens):
            unique = np.unique(np.asarray(tokens).ravel()).tolist()
            hits = misses = 0
            missing = []
            for token in unique:  # the pre-vectorisation probe loop
                if token in reference:
                    hits += 1
                    reference.move_to_end(token)
                else:
                    misses += 1
                    missing.append(token)
            for token in missing:
                while len(reference) >= cache.capacity_rows:
                    reference.popitem(last=False)
                reference[token] = None
            return hits, misses

        cache = make_cache(executor, capacity=8)
        rng = np.random.default_rng(3)
        for _ in range(40):
            tokens = rng.integers(0, 24, size=rng.integers(0, 12))
            want_hits, want_misses = reference_lookup(cache, tokens)
            result = cache.lookup(tokens)
            assert (result.hits, result.misses) == (want_hits, want_misses)
            assert list(cache._resident) == list(reference)

    def test_2d_token_batch_flattened(self, executor):
        cache = make_cache(executor)
        result = cache.lookup(np.array([[1, 2], [2, 3]]))
        assert result.unique_tokens == 3


class TestLRUEviction:
    def test_capacity_never_exceeded(self, executor):
        cache = make_cache(executor, capacity=4)
        cache.lookup(np.arange(10))
        assert cache.resident_rows == 4

    def test_least_recently_used_evicted_first(self, executor):
        cache = make_cache(executor, capacity=3)
        cache.lookup(np.array([1]))
        cache.lookup(np.array([2]))
        cache.lookup(np.array([3]))
        cache.lookup(np.array([1]))  # touch 1 → 2 becomes LRU
        cache.lookup(np.array([4]))  # evicts 2
        assert cache.is_resident(1)
        assert not cache.is_resident(2)
        assert cache.is_resident(3) and cache.is_resident(4)

    def test_eviction_counter(self, executor):
        cache = make_cache(executor, capacity=2)
        cache.lookup(np.array([1, 2]))
        cache.lookup(np.array([3]))
        assert cache.total_evictions == 1

    def test_zipf_skew_drives_the_hit_rate(self, executor):
        """§4.4's premise: the cache works *because* token usage is
        Zipf-skewed.  A 10 %-of-vocab cache under skewed traffic beats
        the same cache under uniform traffic by a wide margin."""
        from repro.text.vocab import Vocabulary

        def steady_hit_rate(zipf_s):
            vocab = Vocabulary(10_000, zipf_s=zipf_s)
            ex = DeviceExecutor(NVIDIA_5070.create())
            cache = make_cache(ex, capacity=1000)
            rng = np.random.default_rng(0)
            for _ in range(6):
                cache.lookup(vocab.sample(rng, 1500))
            return cache.hit_rate

        skewed = steady_hit_rate(1.3)
        near_uniform = steady_hit_rate(0.2)
        assert skewed > 0.35
        assert skewed > 2.5 * near_uniform
