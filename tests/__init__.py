"""Unit-test package.

Being a package gives these modules qualified import names
(``tests.test_data_plane``), so a basename may be shared with the
top-level benchmark modules (``benchmarks/test_data_plane.py``)
without colliding in pytest's default import mode.
"""
