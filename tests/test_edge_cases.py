"""Edge-case and scalability tests across the engine stack."""

import numpy as np
import pytest

from repro.core.config import PrismConfig
from repro.core.engine import PrismEngine
from repro.data.datasets import get_dataset
from repro.data.workloads import build_batch
from repro.device.platforms import get_profile
from repro.harness.runner import run_system, shared_model, shared_tokenizer
from repro.model.transformer import CandidateBatch
from repro.model.zoo import QWEN3_0_6B


def make_batch(num_candidates, seed_base=0, relevance=None, length=200):
    tokenizer = shared_tokenizer(QWEN3_0_6B)
    rng = np.random.default_rng(seed_base)
    query = tokenizer.encode_synthetic(seed_base + 1, 12)
    docs = [tokenizer.encode_synthetic(seed_base + 10 + i, length) for i in range(num_candidates)]
    tokens = tokenizer.batch_pairs(query, docs, QWEN3_0_6B.max_seq_len)
    if relevance is None:
        relevance = rng.uniform(0.05, 0.95, num_candidates)
    return CandidateBatch(
        tokens=tokens,
        lengths=tokenizer.attention_lengths(tokens),
        relevance=np.asarray(relevance, dtype=np.float64),
        uids=rng.integers(0, 2**31, num_candidates),
    )


def make_engine(config=None):
    device = get_profile("nvidia_5070").create()
    engine = PrismEngine(
        shared_model(QWEN3_0_6B), device, config or PrismConfig(numerics=False)
    )
    engine.prepare()
    return engine


class TestDegeneratePools:
    def test_single_candidate_pool(self):
        result = make_engine().rerank(make_batch(1), 1)
        assert result.top_indices.tolist() == [0]

    def test_k_equals_pool_size(self):
        result = make_engine().rerank(make_batch(5), 5)
        assert sorted(result.top_indices.tolist()) == list(range(5))

    def test_two_candidates_top_one(self):
        batch = make_batch(2, relevance=[0.9, 0.1])
        result = make_engine().rerank(batch, 1)
        assert result.top_indices.tolist() == [0]

    def test_identical_relevance_pool(self):
        """All candidates equally relevant: no crash, K returned, and
        no pruning should trigger (no distinct clusters exist)."""
        batch = make_batch(12, relevance=[0.5] * 12)
        result = make_engine().rerank(batch, 4)
        assert result.k == 4
        for event in result.prune_events:
            # Any event must still partition correctly.
            assert event.num_selected + event.num_dropped + event.num_deferred == 12

    def test_extreme_bimodal_pool(self):
        """Half clearly relevant, half clearly not, K = the split point:
        the easiest possible pruning case — should terminate early."""
        batch = make_batch(16, relevance=[0.9] * 8 + [0.1] * 8)
        result = make_engine().rerank(batch, 8)
        assert result.terminated_early
        assert set(result.top_indices.tolist()) == set(range(8))

    def test_sequential_requests_share_engine(self):
        engine = make_engine()
        first = engine.rerank(make_batch(10, seed_base=1), 5)
        second = engine.rerank(make_batch(10, seed_base=2), 5)
        assert first.k == second.k == 5
        # Memory returns to baseline between requests.
        stats = engine.device.memory.stats()
        assert stats.final_bytes < stats.peak_bytes


class TestMassiveCandidatePools:
    """§4.3's scalability claim: hidden-state offloading bounds memory
    as the candidate count grows."""

    def test_200_candidates_bounded_hidden_memory(self):
        config = PrismConfig(numerics=False, hidden_offload="auto")
        engine = make_engine(config)
        result = engine.rerank(make_batch(200, length=450), 10)
        assert result.k == 10
        hidden_peak = engine.device.memory.stats().peak_by_category.get("hidden", 0)
        assert hidden_peak <= config.hidden_memory_budget * 1.1

    def test_peak_sublinear_in_candidates(self):
        """Peak memory grows far slower than the candidate count."""
        peaks = {}
        for n in (40, 200):
            engine = make_engine(PrismConfig(numerics=False))
            engine.rerank(make_batch(n, length=450), 10)
            peaks[n] = engine.device.memory.stats().peak_bytes
        assert peaks[200] < 2.2 * peaks[40]

    def test_latency_scales_roughly_linearly_before_pruning(self):
        latencies = {}
        for n in (25, 100):
            engine = make_engine(PrismConfig(numerics=False, pruning_enabled=False))
            latencies[n] = engine.rerank(make_batch(n, length=450), 10).latency_seconds
        ratio = latencies[100] / latencies[25]
        assert 3.0 < ratio < 5.0

    def test_offload_writes_and_reads_hidden_states(self):
        config = PrismConfig(numerics=False, hidden_offload="on")
        engine = make_engine(config)
        engine.rerank(make_batch(60, length=450), 10)
        ssd = engine.device.ssd
        hidden_writes = [r for r in ssd.request_log if "hidden-ring/write" in r.tag]
        hidden_reads = [r for r in ssd.request_log if "hidden-ring/read" in r.tag]
        assert hidden_writes and hidden_reads


class TestConfigurationMatrix:
    """Every combination of the four technique flags must produce the
    same top-K — the techniques are resource policies, not score
    policies."""

    @pytest.mark.parametrize("pruning", [False, True])
    @pytest.mark.parametrize("chunked", [False, True])
    @pytest.mark.parametrize("streaming", [False, True])
    @pytest.mark.parametrize("cache", [False, True])
    def test_topk_invariant_under_technique_flags(
        self, pruning, chunked, streaming, cache
    ):
        batch = make_batch(12, seed_base=7, relevance=[0.9] * 3 + [0.5] * 4 + [0.1] * 5)
        config = PrismConfig(
            pruning_enabled=pruning,
            chunked_execution=chunked,
            layer_streaming=streaming,
            embedding_cache=cache,
            numerics=False,
        )
        result = make_engine(config).rerank(batch, 3)
        assert set(result.top_indices.tolist()) == {0, 1, 2}


class TestPlatformEdgeCases:
    def test_a800_runs_everything_in_memory_quickly(self):
        queries = get_dataset("wikipedia").queries(2, 20)
        edge = run_system("hf", QWEN3_0_6B, "nvidia_5070", queries, 10)
        dc = run_system("hf", QWEN3_0_6B, "nvidia_a800", queries, 10)
        assert dc.mean_latency < edge.mean_latency

    def test_batch_larger_than_minibatch_on_tiny_pool(self):
        """HF's fixed mini-batch handles pools smaller than the batch."""
        from repro.baselines import HFEngine

        device = get_profile("nvidia_5070").create()
        engine = HFEngine(shared_model(QWEN3_0_6B), device, batch_size=16, numerics=False)
        engine.prepare()
        result = engine.rerank(make_batch(3), 2)
        assert result.k == 2

    def test_long_documents_clamped_to_max_seq_len(self):
        batch = make_batch(4, length=2000)
        assert (batch.lengths <= QWEN3_0_6B.max_seq_len).all()
        result = make_engine().rerank(batch, 2)
        assert result.k == 2
