"""Tests for the fleet serving layer (DESIGN.md §5)."""

import numpy as np
import pytest

from repro.core.config import PrismConfig
from repro.core.fleet import (
    ROUTING_POLICIES,
    FleetConfig,
    FleetService,
)
from repro.data.datasets import get_dataset
from repro.data.workloads import build_batch
from repro.device.platforms import get_profile
from repro.harness.runner import shared_model, shared_tokenizer
from repro.model.zoo import QWEN3_0_6B


@pytest.fixture(scope="module")
def batches():
    tokenizer = shared_tokenizer(QWEN3_0_6B)
    queries = get_dataset("wikipedia").queries(6, 20)
    return [build_batch(q, tokenizer, QWEN3_0_6B.max_seq_len) for q in queries]


def make_fleet(num_replicas=2, profile="nvidia_5070", **fleet_kwargs):
    service_kwargs = {
        key: fleet_kwargs.pop(key)
        for key in ("sample_rate", "precision_target", "step")
        if key in fleet_kwargs
    }
    return FleetService.homogeneous(
        shared_model(QWEN3_0_6B),
        get_profile(profile),
        num_replicas,
        fleet_config=FleetConfig(**fleet_kwargs),
        config=PrismConfig(numerics=False),
        **service_kwargs,
    )


class TestConfigValidation:
    def test_bad_max_batch(self):
        with pytest.raises(ValueError):
            FleetConfig(max_batch=0)

    def test_bad_max_wait(self):
        with pytest.raises(ValueError):
            FleetConfig(max_wait_ms=-1.0)

    def test_unknown_routing(self):
        with pytest.raises(ValueError):
            FleetConfig(routing="sticky")

    def test_bad_overhead(self):
        with pytest.raises(ValueError):
            FleetConfig(dispatch_overhead_ms=-0.1)

    def test_bad_max_skew(self):
        with pytest.raises(ValueError):
            FleetConfig(max_skew=-1.0)

    def test_bad_ewma_alpha(self):
        with pytest.raises(ValueError):
            FleetConfig(ewma_alpha=0.0)

    def test_needs_replicas(self):
        with pytest.raises(ValueError):
            FleetService(shared_model(QWEN3_0_6B), [])

    def test_homogeneous_needs_positive_count(self):
        with pytest.raises(ValueError):
            FleetService.homogeneous(
                shared_model(QWEN3_0_6B), get_profile("nvidia_5070"), 0
            )


class TestAdmission:
    def test_arrival_before_fleet_time_rejected(self, batches):
        fleet = make_fleet(1)
        fleet.submit(batches[0], 10)
        fleet.drain()
        assert fleet.clock.now > 0
        with pytest.raises(ValueError):
            fleet.submit(batches[0], 10, at=0.0)

    def test_drain_serves_everything(self, batches):
        fleet = make_fleet(2)
        ids = [fleet.submit(batch, 10) for batch in batches]
        outcomes = fleet.drain()
        assert sorted(o.request_id for o in outcomes) == ids
        assert fleet.pending_requests == 0

    def test_drain_completion_ordered(self, batches):
        fleet = make_fleet(2)
        for batch in batches:
            fleet.submit(batch, 10)
        outcomes = fleet.drain()
        finishes = [o.finish for o in outcomes]
        assert finishes == sorted(finishes)

    def test_fleet_clock_reaches_last_completion(self, batches):
        fleet = make_fleet(2)
        for batch in batches:
            fleet.submit(batch, 10)
        outcomes = fleet.drain()
        assert fleet.clock.now == pytest.approx(max(o.finish for o in outcomes))


class TestBatching:
    def test_max_batch_respected(self, batches):
        fleet = make_fleet(1, max_batch=2, max_wait_ms=0.0)
        for batch in batches:
            fleet.submit(batch, 10)
        outcomes = fleet.drain()
        # Dispatch groups share a start instant; none exceeds max_batch.
        starts = {}
        for outcome in outcomes:
            starts.setdefault(outcome.start, []).append(outcome)
        assert max(len(group) for group in starts.values()) <= 2

    def test_partial_batch_waits_for_deadline(self, batches):
        # One request now, the next arriving after the wait bound: the
        # first must flush at its deadline, not when the second arrives.
        fleet = make_fleet(1, max_batch=4, max_wait_ms=50.0)
        fleet.submit(batches[0], 10, at=0.0)
        fleet.submit(batches[1], 10, at=10.0)
        outcomes = sorted(fleet.drain(), key=lambda o: o.request_id)
        assert outcomes[0].start == pytest.approx(0.050)

    def test_end_of_stream_flushes_immediately(self, batches):
        # With no future arrival, waiting out max_wait cannot grow the
        # batch — the dispatcher flushes at once.
        fleet = make_fleet(1, max_batch=4, max_wait_ms=1000.0)
        fleet.submit(batches[0], 10, at=0.0)
        (outcome,) = fleet.drain()
        assert outcome.start == pytest.approx(0.0)
        assert outcome.queue_wait == pytest.approx(0.0)

    def test_full_batch_flushes_before_deadline(self, batches):
        fleet = make_fleet(1, max_batch=2, max_wait_ms=1000.0)
        for batch in batches[:2]:
            fleet.submit(batch, 10, at=0.0)
        outcomes = fleet.drain()
        assert all(o.start == pytest.approx(0.0) for o in outcomes)

    def test_dispatch_overhead_charged(self, batches):
        cheap = make_fleet(1, dispatch_overhead_ms=0.0)
        costly = make_fleet(1, dispatch_overhead_ms=100.0)
        for fleet in (cheap, costly):
            fleet.submit(batches[0], 10)
        fast = cheap.drain()[0]
        slow = costly.drain()[0]
        assert slow.latency == pytest.approx(fast.latency + 0.100)


class TestRouting:
    def test_round_robin_cycles(self, batches):
        fleet = make_fleet(3, routing="round_robin", max_batch=1, max_wait_ms=0.0)
        for batch in batches:
            fleet.submit(batch, 10)
        outcomes = sorted(fleet.drain(), key=lambda o: o.request_id)
        assert [o.replica for o in outcomes] == [0, 1, 2, 0, 1, 2]

    def test_least_loaded_prefers_idle_replica(self, batches):
        fleet = make_fleet(2, routing="least_loaded", max_batch=1, max_wait_ms=0.0)
        for batch in batches[:2]:
            fleet.submit(batch, 10)
        outcomes = sorted(fleet.drain(), key=lambda o: o.request_id)
        # Both arrive in the same burst; the second must not pile onto
        # the replica that already holds the first.
        assert {o.replica for o in outcomes} == {0, 1}

    def test_ewma_shifts_load_to_fast_replicas(self, batches):
        model = shared_model(QWEN3_0_6B)
        profiles = [get_profile("nvidia_5070"), get_profile("apple_m2")]
        fleet = FleetService(
            model,
            profiles,
            fleet_config=FleetConfig(
                routing="ewma", max_batch=1, max_wait_ms=0.0
            ),
            config=PrismConfig(numerics=False),
        )
        for batch in batches + batches:  # 12 requests
            fleet.submit(batch, 10)
        fleet.drain()
        fast, slow = fleet.replicas
        assert fast.requests_served > slow.requests_served

    def test_all_policies_registered(self):
        assert set(ROUTING_POLICIES) == {"round_robin", "least_loaded", "ewma"}


class TestDeterminism:
    def test_results_identical_across_fleet_sizes(self, batches):
        per_size = {}
        for num_replicas in (1, 3):
            fleet = make_fleet(num_replicas)
            for batch in batches:
                fleet.submit(batch, 10)
            outcomes = sorted(fleet.drain(), key=lambda o: o.request_id)
            per_size[num_replicas] = [o.result.top_indices.tolist() for o in outcomes]
        assert per_size[1] == per_size[3]


class TestSampling:
    def test_fleet_wide_stride(self, batches):
        fleet = make_fleet(2, sample_rate=0.5)
        for batch in batches:
            fleet.submit(batch, 10)
        fleet.drain()
        sampled = sum(r.service.stats.requests_sampled for r in fleet.replicas)
        assert sampled == 3  # 6 requests x 0.5, regardless of routing


class TestMaintenance:
    def test_none_without_samples(self, batches):
        fleet = make_fleet(2, sample_rate=0.5)
        assert fleet.idle_maintenance() is None

    def test_consensus_propagates_to_all_replicas(self, batches):
        fleet = make_fleet(3, sample_rate=1.0, precision_target=0.8, step=0.05)
        for batch in batches:
            fleet.submit(batch, 10)
        fleet.drain()
        report = fleet.idle_maintenance()
        assert report is not None
        thresholds = {r.service.threshold for r in fleet.replicas}
        assert thresholds == {report.consensus_threshold}
        assert report.consensus_threshold == pytest.approx(
            float(np.median(report.pre_consensus_thresholds))
        )

    def test_maintenance_leaves_serving_clocks_untouched(self, batches):
        fleet = make_fleet(2, sample_rate=1.0)
        for batch in batches:
            fleet.submit(batch, 10)
        fleet.drain()
        before = [r.service.device.clock.now for r in fleet.replicas]
        fleet.idle_maintenance()
        assert [r.service.device.clock.now for r in fleet.replicas] == before


class TestStats:
    def test_percentiles_ordered(self, batches):
        fleet = make_fleet(2)
        for batch in batches:
            fleet.submit(batch, 10)
        fleet.drain()
        stats = fleet.stats()
        assert stats.p50_latency <= stats.p95_latency <= stats.p99_latency
        assert stats.throughput_rps > 0
        assert stats.max_queue_depth >= 1

    def test_utilisation_bounds(self, batches):
        fleet = make_fleet(2)
        for batch in batches:
            fleet.submit(batch, 10)
        fleet.drain()
        stats = fleet.stats()
        assert set(stats.utilisation) == {0, 1}
        for value in stats.utilisation.values():
            assert 0.0 <= value <= 1.0 + 1e-9

    def test_empty_fleet_stats(self):
        # An empty sample has no percentiles or rate: every helper
        # answers None rather than a fake number (DESIGN.md §10).
        fleet = make_fleet(1)
        stats = fleet.stats()
        assert stats.throughput_rps is None
        assert stats.p50_latency is None
        assert stats.p95_latency is None
        assert stats.p99_latency is None
        assert stats.latency_percentile(75) is None
        assert stats.mean_queue_wait is None
        assert stats.max_queue_depth == 0


class TestIntraReplicaConcurrency:
    """Replica routing composed with the §6 intra-replica scheduler."""

    def test_bad_intra_concurrency_rejected(self):
        with pytest.raises(ValueError):
            FleetConfig(intra_concurrency=0)

    def test_bad_intra_policy_rejected(self):
        with pytest.raises(ValueError):
            FleetConfig(intra_concurrency=2, intra_policy="lottery")

    def test_selections_identical_to_serial_fleet(self, batches):
        serial = make_fleet(2, max_batch=3)
        concurrent = make_fleet(2, max_batch=3, intra_concurrency=3)
        for batch in batches:
            serial.submit(batch, 10)
            concurrent.submit(batch, 10)
        serial_out = {o.request_id: o for o in serial.drain()}
        concurrent_out = {o.request_id: o for o in concurrent.drain()}
        assert set(serial_out) == set(concurrent_out)
        for request_id, outcome in serial_out.items():
            assert np.array_equal(
                outcome.result.top_indices,
                concurrent_out[request_id].result.top_indices,
            )

    def test_shared_plane_fleet_matches_serial_selections(self, batches):
        """The §7 plane composes with routing: a fused fleet serves the
        exact selections of a serial one while replicas amortise SSD
        weight reads across each dispatched batch."""
        serial = make_fleet(2, max_batch=3)
        fused = make_fleet(
            2,
            max_batch=3,
            intra_concurrency=3,
            intra_policy="fusion",
            shared_weight_plane=True,
        )
        for batch in batches:
            serial.submit(batch, 10)
            fused.submit(batch, 10)
        serial_out = {o.request_id: o for o in serial.drain()}
        fused_out = {o.request_id: o for o in fused.drain()}
        for request_id, outcome in serial_out.items():
            assert np.array_equal(
                outcome.result.top_indices,
                fused_out[request_id].result.top_indices,
            )
        planes = [r.service.engine.weight_plane for r in fused.replicas]
        assert all(plane is not None for plane in planes)
        assert sum(plane.stats.attaches for plane in planes) > 0
        assert all(r.service.engine.weight_plane is None for r in serial.replicas)

    def test_concurrent_fleet_samples_like_serial(self, batches):
        serial = make_fleet(2, max_batch=3, sample_rate=0.5)
        concurrent = make_fleet(2, max_batch=3, intra_concurrency=3, sample_rate=0.5)
        for batch in batches:
            serial.submit(batch, 10)
            concurrent.submit(batch, 10)
        serial.drain()
        concurrent.drain()
        def pending(fleet):
            return sum(r.service.pending_samples for r in fleet.replicas)

        assert pending(concurrent) == pending(serial) == 3
